"""Multi-corner analysis tests."""

import pytest

from repro.errors import TimingError
from repro.timing.corners import (
    DEFAULT_CORNERS,
    Corner,
    MultiCornerAnalysis,
)
from repro.timing.slack import CheckKind


@pytest.fixture(scope="module")
def mca(small_design):
    analysis = MultiCornerAnalysis(
        small_design.netlist, small_design.constraints,
        small_design.placement, small_design.sta_config,
    )
    analysis.update_all()
    return analysis


class TestConstruction:
    def test_three_default_corners(self, mca):
        assert set(mca.engines) == {"ss", "tt", "ff"}

    def test_duplicate_corner_names_rejected(self, small_design):
        with pytest.raises(TimingError):
            MultiCornerAnalysis(
                small_design.netlist, small_design.constraints,
                small_design.placement, small_design.sta_config,
                corners=(Corner("tt", 1.0), Corner("tt", 1.1)),
            )

    def test_empty_corners_rejected(self, small_design):
        with pytest.raises(TimingError):
            MultiCornerAnalysis(
                small_design.netlist, small_design.constraints,
                small_design.placement, small_design.sta_config,
                corners=(),
            )

    def test_unknown_corner_lookup(self, mca):
        with pytest.raises(TimingError):
            mca.engine("sf")


class TestCornerOrdering:
    def test_ss_slower_than_tt_slower_than_ff(self, mca):
        """Setup WNS orders with the delay scale."""
        summaries = mca.summary()
        assert summaries["ss"]["setup"].wns < summaries["tt"]["setup"].wns
        assert summaries["tt"]["setup"].wns < summaries["ff"]["setup"].wns

    def test_hold_scales_toward_zero_at_fast_corner(self, mca):
        """Pure proportional scaling shrinks hold margins' magnitude at
        the fast corner (slack ~ scale * (early_data - late_ck) - hold);
        which corner *dominates* depends on each endpoint's sign, which
        is exactly why hold is signed off multi-corner."""
        tt = {s.name: s.slack for s in mca.engine("tt").hold_slacks()}
        ff = {s.name: s.slack for s in mca.engine("ff").hold_slacks()}
        shrunk = sum(
            1 for name in tt if abs(ff[name]) <= abs(tt[name]) + 1e-6
        )
        assert shrunk >= 0.5 * len(tt)

    def test_setup_dominant_corner_is_ss(self, mca):
        assert mca.dominant_corner(CheckKind.SETUP) == "ss"

    def test_delay_scale_actually_scales(self, mca):
        """TT vs SS arrivals differ by ~the corner ratio on data paths."""
        tt = mca.engine("tt")
        ss = mca.engine("ss")
        worst_tt = min(tt.setup_slacks(), key=lambda s: s.slack)
        same_ss = next(
            s for s in ss.setup_slacks() if s.name == worst_tt.name
        )
        ratio = same_ss.arrival / worst_tt.arrival
        assert 1.10 < ratio < 1.20


class TestMerging:
    def test_merged_covers_every_endpoint(self, mca):
        merged = mca.merged_setup()
        assert len(merged) == len(
            mca.engine("tt").graph.endpoint_nodes()
        )

    def test_merged_is_pointwise_minimum(self, mca):
        merged = {m.name: m for m in mca.merged_setup()}
        for corner_name, engine in mca.engines.items():
            for s in engine.setup_slacks():
                assert merged[s.name].slack <= s.slack + 1e-9

    def test_merged_sorted_worst_first(self, mca):
        merged = mca.merged_setup()
        slacks = [m.slack for m in merged]
        assert slacks == sorted(slacks)

    def test_report_mentions_all_corners(self, mca):
        text = mca.report()
        for corner in DEFAULT_CORNERS:
            assert corner.name in text
        assert "merged setup WNS" in text
