"""CRPR tests on a hand-built clock tree with known common segments.

Topology::

    clk --- root --- bl --- FF_A (launch)
                  \\
                   br --- FF_B, FF_C (capture)

FF_A/FF_B share only the root buffer; FF_B/FF_C share root + br.
"""

import pytest

from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection
from repro.sdc.constraints import Clock, Constraints
from repro.timing.sta import STAConfig, STAEngine

LIB = make_default_library()


def _tree_design():
    n = Netlist("crpr", LIB)
    n.add_port("clk", PortDirection.INPUT)
    n.add_port("a", PortDirection.INPUT)
    n.add_gate("root", "BUF_X4", {"A": "clk", "Z": "ck0"})
    n.add_gate("bl", "BUF_X2", {"A": "ck0", "Z": "ckl"})
    n.add_gate("br", "BUF_X2", {"A": "ck0", "Z": "ckr"})
    n.add_gate("ffa", "DFF_X1", {"D": "a", "CK": "ckl", "Q": "qa"})
    n.add_gate("u1", "INV_X1", {"A": "qa", "Z": "w1"})
    n.add_gate("ffb", "DFF_X1", {"D": "w1", "CK": "ckr", "Q": "qb"})
    n.add_gate("u2", "INV_X1", {"A": "qb", "Z": "w2"})
    n.add_gate("ffc", "DFF_X1", {"D": "w2", "CK": "ckr", "Q": "qc"})
    n.add_gate("u3", "INV_X1", {"A": "qc", "Z": "w3"})  # keep qc loaded
    constraints = Constraints()
    constraints.add_clock(Clock("clk", period=500.0, source_port="clk"))
    return n, constraints


@pytest.fixture()
def engine():
    netlist, constraints = _tree_design()
    config = STAConfig(clock_derate_late=1.10, clock_derate_early=0.90)
    engine = STAEngine(netlist, constraints, None, config)
    engine.update_timing()
    return engine


def _ck(engine, flop):
    return engine.graph.node_of[PinRef(flop, "CK")]


class TestClockPaths:
    def test_path_edges_source_to_sink(self, engine):
        path = engine.crpr.path_of(_ck(engine, "ffa"))
        gates = [
            engine.graph.edge(e).gate
            for e in path if engine.graph.edge(e).gate
        ]
        assert gates == ["root", "bl"]

    def test_non_clock_node_rejected(self, engine):
        from repro.errors import TimingError
        from repro.timing.crpr import clock_path_edges

        data_node = engine.graph.node_of[PinRef("u1", "A")]
        with pytest.raises(TimingError):
            clock_path_edges(engine.graph, engine.state, data_node)


class TestCredit:
    def test_credit_zero_without_clock_pair(self, engine):
        assert engine.crpr.credit(None, _ck(engine, "ffb")) == 0.0
        assert engine.crpr.credit(_ck(engine, "ffa"), None) == 0.0

    def test_shared_root_only(self, engine):
        """ffa->ffb share the root buffer arcs (port->root cell+nets)."""
        credit = engine.crpr.credit(_ck(engine, "ffa"), _ck(engine, "ffb"))
        assert credit > 0.0
        # Hand-compute: common prefix = net clk->root.A + root cell arc
        # + net ck0 (up to where paths diverge at bl vs br inputs).
        graph, state = engine.graph, engine.state
        root_arc = next(
            e for e in graph.live_edges() if e.gate == "root"
        )
        expected_min = root_arc.delay * (1.10 - 0.90)
        assert credit >= expected_min - 1e-9

    def test_deeper_sharing_gives_more_credit(self, engine):
        shallow = engine.crpr.credit(_ck(engine, "ffa"), _ck(engine, "ffb"))
        deep = engine.crpr.credit(_ck(engine, "ffb"), _ck(engine, "ffc"))
        assert deep > shallow

    def test_same_sink_credits_whole_path(self, engine):
        ck = _ck(engine, "ffb")
        credit = engine.crpr.credit(ck, ck)
        late = engine.state.arrival_late[ck]
        early = engine.state.arrival_early[ck]
        assert credit == pytest.approx(late - early)

    def test_credit_symmetric(self, engine):
        a, b = _ck(engine, "ffa"), _ck(engine, "ffb")
        assert engine.crpr.credit(a, b) == pytest.approx(
            engine.crpr.credit(b, a)
        )

    def test_credit_nonnegative_on_generated_design(self, small_engine):
        sinks = [
            info.ck_node for info in small_engine.graph.endpoints.values()
            if info.ck_node is not None
        ]
        for launch in sinks[:6]:
            for capture in sinks[:6]:
                assert small_engine.crpr.credit(launch, capture) >= 0.0

    def test_cache_invalidation(self, engine):
        ck = _ck(engine, "ffa")
        engine.crpr.path_of(ck)
        assert engine.crpr._paths
        engine.update_timing()
        assert not engine.crpr._paths
