"""Scenario-stacked kernel tests: the tier-1 bit-identity gate.

The contract under test (``repro.timing.scenarios``): one stacked
sweep over N scenarios leaves every engine **bit-identical** — IEEE-754
equality, dict insertion order included — to running that engine's own
``update_timing()`` in isolation, across delay scales, corner-private
derating tables, and per-corner mGBA weights.  Structurally
incompatible scenario sets must raise :class:`ScenarioError`, and
:class:`MultiCornerAnalysis` must fall back to the per-corner fan-out
(producing the same results) rather than fail.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.designs.generator import generate_design
from repro.timing.corners import Corner, MultiCornerAnalysis
from repro.timing.kernel import clear_layout_cache
from repro.timing.scenarios import ScenarioError, ScenarioStack
from repro.timing.sta import STAEngine

from tests.timing.strategies import corner_sets, design_specs

FOUR_CORNERS = (
    Corner("c0", 0.9),
    Corner("c1", 1.0),
    Corner("c2", 1.1),
    Corner("c3", 1.2),
)


def _mca(design, corners=FOUR_CORNERS, kernel="vector") -> \
        MultiCornerAnalysis:
    """An analysis with the kernel pinned in config (config beats the
    ``REPRO_STA_KERNEL`` env, so these tests mean the same thing on the
    scalar-kernel CI leg)."""
    return MultiCornerAnalysis(
        design.netlist, design.constraints, design.placement,
        replace(design.sta_config, kernel=kernel), corners,
    )


def _assert_engines_identical(a: STAEngine, b: STAEngine) -> None:
    """Full bit-identity: state, edges, slacks (order included)."""
    n = len(a.graph.nodes)
    e = len(a.graph.edges)
    for field in ("arrival_late", "arrival_early", "slew"):
        assert np.array_equal(
            getattr(a.state, field)[:n], getattr(b.state, field)[:n]
        ), field
    for field in ("derate_late", "derate_early"):
        assert np.array_equal(
            getattr(a.state, field)[:e], getattr(b.state, field)[:e]
        ), field
    for ea, eb in zip(a.graph.edges, b.graph.edges):
        if ea is None:
            assert eb is None
            continue
        assert ea.delay == eb.delay and ea.out_slew == eb.out_slew
    for kind in ("setup_slacks", "hold_slacks"):
        sa = [(s.name, s.slack) for s in getattr(a, kind)()]
        sb = [(s.name, s.slack) for s in getattr(b, kind)()]
        assert sa == sb, kind
    assert np.array_equal(
        np.asarray(a.required_times()), np.asarray(b.required_times())
    )
    assert a.gate_slacks() == b.gate_slacks()


def _assert_matches_oracle(mca: MultiCornerAnalysis, design,
                           corners) -> None:
    """Every stacked engine equals a freshly fanned-out one."""
    oracle = _mca(design, corners)
    oracle.update_all(stacked=False)
    assert oracle.last_update_mode == "fanout"
    for name in mca.engines:
        _assert_engines_identical(mca.engines[name], oracle.engines[name])
    assert [
        (m.name, m.slack, m.corner) for m in mca.merged_setup()
    ] == [
        (m.name, m.slack, m.corner) for m in oracle.merged_setup()
    ]
    assert mca.report() == oracle.report()


class TestStackedEquivalence:
    def test_stacked_path_taken_and_bit_identical(self, small_design):
        mca = _mca(small_design)
        mca.update_all()
        assert mca.last_update_mode == "stacked"
        _assert_matches_oracle(mca, small_design, FOUR_CORNERS)

    def test_corner_private_derating_tables(self, small_design):
        from repro.aocv.table import make_derating_table

        corners = (
            Corner("tight", 1.1, make_derating_table(sigma=0.15)),
            Corner("loose", 1.1, make_derating_table(sigma=0.55)),
            Corner("tt", 1.0),
        )
        mca = _mca(small_design, corners)
        mca.update_all()
        assert mca.last_update_mode == "stacked"
        _assert_matches_oracle(mca, small_design, corners)
        # The two sigma characterizations must actually disagree.
        tight = mca.engines["tight"].state
        loose = mca.engines["loose"].state
        n_edges = len(mca.engines["tight"].graph.edges)
        assert not np.array_equal(
            tight.derate_late[:n_edges], loose.derate_late[:n_edges]
        )

    def test_per_scenario_mgba_weights(self, small_design):
        mca = _mca(small_design)
        mca.update_all()
        layout = mca.engines["c0"]._ensure_layout()
        targets = list(layout.gates[:20])
        assert targets, "design has no data-cell arcs to weight"
        for i, name in enumerate(mca.engines):
            mca.engines[name].set_gate_weights(
                {g: 0.6 + 0.1 * i for g in targets}
            )
        before = {
            name: np.array(eng.state.arrival_late[:len(eng.graph.nodes)])
            for name, eng in mca.engines.items()
        }
        mca.update_all()
        assert mca.last_update_mode == "stacked"
        # Weights must have moved timing (guard against a no-op pass)...
        moved = any(
            not np.array_equal(
                before[name],
                eng.state.arrival_late[:len(eng.graph.nodes)],
            )
            for name, eng in mca.engines.items()
        )
        assert moved
        # ...and the weighted stack still matches the weighted fan-out.
        oracle = _mca(small_design)
        for i, name in enumerate(oracle.engines):
            oracle.engines[name].set_gate_weights(
                {g: 0.6 + 0.1 * i for g in targets}
            )
        oracle.update_all(stacked=False)
        for name in mca.engines:
            _assert_engines_identical(
                mca.engines[name], oracle.engines[name]
            )

    def test_repeat_update_is_stable(self, small_design):
        mca = _mca(small_design)
        mca.update_all()
        first = {
            name: [(s.name, s.slack) for s in eng.setup_slacks()]
            for name, eng in mca.engines.items()
        }
        mca.update_all()
        assert mca.last_update_mode == "stacked"
        for name, eng in mca.engines.items():
            assert [
                (s.name, s.slack) for s in eng.setup_slacks()
            ] == first[name]


class TestStackedReductions:
    @pytest.fixture(scope="class")
    def stack(self, small_design):
        engines = [
            STAEngine(
                small_design.netlist, small_design.constraints,
                small_design.placement,
                replace(
                    small_design.sta_config,
                    kernel="vector",
                    delay_scale=(
                        small_design.sta_config.delay_scale * c.delay_scale
                    ),
                ),
            )
            for c in FOUR_CORNERS
        ]
        stack = ScenarioStack.from_engines(
            engines, [c.name for c in FOUR_CORNERS]
        )
        stack.update_all()
        return stack

    def test_worst_slacks_match_per_engine_wns(self, stack):
        worst = stack.worst_slacks()
        for i, eng in enumerate(stack.engines):
            assert worst[i] == min(s.slack for s in eng.setup_slacks())

    def test_required_all_rows_match_required_times(self, stack):
        required = stack.required_all()
        for i, eng in enumerate(stack.engines):
            per_engine = np.asarray(eng.required_times())
            assert np.array_equal(
                required[i, :per_engine.size], per_engine
            )

    def test_merged_setup_ordering_and_tie_break(self, stack):
        merged = stack.merged_setup()
        slacks = [row[1] for row in merged]
        assert slacks == sorted(slacks)
        names, matrix = stack.endpoint_matrix()
        for endpoint, slack, scenario in merged:
            j = names.index(endpoint)
            assert slack == matrix[:, j].min()
            # argmin keeps the first (declaration-order) scenario on ties.
            assert scenario == stack.names[int(matrix[:, j].argmin())]


class TestFallback:
    def test_scalar_kernel_falls_back_to_fanout(self, small_design):
        mca = _mca(small_design, kernel="scalar")
        mca.update_all()
        assert mca.last_update_mode == "fanout"
        stacked = _mca(small_design)
        stacked.update_all()
        assert stacked.last_update_mode == "stacked"
        for name in mca.engines:
            _assert_engines_identical(
                mca.engines[name], stacked.engines[name]
            )

    def test_stacked_false_forces_fanout(self, small_design):
        mca = _mca(small_design)
        mca.update_all(stacked=False)
        assert mca.last_update_mode == "fanout"


class TestValidation:
    def test_empty_stack_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioStack.from_engines([])

    def test_name_count_mismatch_rejected(self, small_engine):
        with pytest.raises(ScenarioError):
            ScenarioStack.from_engines([small_engine], ["a", "b"])

    def test_scalar_engine_rejected(self, small_design):
        engine = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement,
            replace(small_design.sta_config, kernel="scalar"),
        )
        with pytest.raises(ScenarioError, match="kernel"):
            ScenarioStack.from_engines([engine])

    def test_different_netlist_objects_rejected(self, small_design,
                                                fresh_small_design):
        a = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement,
            replace(small_design.sta_config, kernel="vector"),
        )
        b = STAEngine(
            fresh_small_design.netlist, fresh_small_design.constraints,
            fresh_small_design.placement,
            replace(fresh_small_design.sta_config, kernel="vector"),
        )
        with pytest.raises(ScenarioError, match="netlist"):
            ScenarioStack.from_engines([a, b])


class TestLayoutCache:
    def test_shared_layout_hits_content_cache(self, fresh_small_design):
        from repro.obs.metrics import default_registry

        clear_layout_cache()
        registry = default_registry()
        hits_before = registry.counter("kernel.layout_cache_hits").value
        mca = _mca(fresh_small_design)
        mca.update_all()
        oracle = _mca(fresh_small_design, (Corner("tt", 1.0),))
        oracle.update_all(stacked=False)
        hits_after = registry.counter("kernel.layout_cache_hits").value
        assert hits_after > hits_before
        _assert_engines_identical(
            mca.engines["c1"], oracle.engines["tt"]
        )
        clear_layout_cache()


# ----------------------------------------------------------------------
# Hypothesis: random reconvergent designs × random scenario sets
# ----------------------------------------------------------------------
class TestRandomScenarioSets:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=design_specs(max_flops=10), corners=corner_sets())
    def test_stacked_matches_per_scenario_oracle(self, spec, corners):
        design = generate_design(spec)
        mca = _mca(design, corners)
        mca.update_all()
        assert mca.last_update_mode == "stacked"
        _assert_matches_oracle(mca, design, corners)
