"""Hypothesis strategies for randomized timing-kernel tests.

The project's own :func:`repro.designs.generator.generate_design` is the
DAG source: it deterministically derives — per seed — a multi-cone
netlist with reconvergent fanin (``cross_source_prob`` wires cones into
a shared signal pool) and a buffered clock tree per domain, which is
exactly the graph shape the levelized kernel has to agree with the
scalar oracle on.  The strategy therefore draws *specs*, not raw
graphs: every drawn example shrinks to a smaller seed/size and rebuilds
bit-for-bit on replay.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.designs.generator import DesignSpec, generate_design


@st.composite
def design_specs(draw, max_flops: int = 14) -> DesignSpec:
    """A random-but-deterministic synthetic design specification.

    Reconvergence is guaranteed by a non-zero ``cross_source_prob``
    floor; every design has at least one clock domain, so clock-tree
    edges (and their flat late/early derate split) are always present.
    """
    seed = draw(st.integers(min_value=0, max_value=2**20))
    n_flops = draw(st.integers(min_value=3, max_value=max_flops))
    n_inputs = draw(st.integers(min_value=1, max_value=5))
    depth_lo = draw(st.integers(min_value=2, max_value=4))
    depth_hi = draw(st.integers(min_value=depth_lo, max_value=depth_lo + 6))
    cross = draw(st.floats(min_value=0.2, max_value=0.8))
    domains = draw(st.integers(min_value=1, max_value=2))
    return DesignSpec(
        name=f"hyp-{seed}",
        seed=seed,
        n_flops=n_flops,
        n_inputs=n_inputs,
        n_outputs=draw(st.integers(min_value=1, max_value=3)),
        depth_range=(depth_lo, depth_hi),
        cross_source_prob=cross,
        n_clock_domains=domains,
    )


@st.composite
def designs(draw, max_flops: int = 14):
    """A fully built random design bundle (netlist + SDC + placement)."""
    return generate_design(draw(design_specs(max_flops=max_flops)))


@st.composite
def corner_sets(draw, max_corners: int = 4):
    """A random scenario (corner) set over one shared netlist.

    Scenarios vary exactly along the value axes the stacked kernel has
    to reproduce per row: every corner draws its own delay scale, and
    about half additionally draw a corner-private derating
    characterization (a :func:`~repro.aocv.table.make_derating_table`
    with its own sigma/slope), exercising the per-scenario derate fill.
    """
    from repro.aocv.table import make_derating_table
    from repro.timing.corners import Corner

    count = draw(st.integers(min_value=2, max_value=max_corners))
    corners = []
    for i in range(count):
        scale = draw(st.floats(min_value=0.7, max_value=1.4))
        table = None
        if draw(st.booleans()):
            table = make_derating_table(
                sigma=draw(st.floats(min_value=0.1, max_value=0.6)),
                distance_slope=draw(
                    st.floats(min_value=0.005, max_value=0.03)
                ),
            )
        corners.append(Corner(f"c{i}", scale, table))
    return tuple(corners)
