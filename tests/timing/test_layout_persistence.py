"""Layout store tiers and incremental level maintenance.

Covers the three cold-path fronts: the in-process content-keyed LRU
(eviction, structural-array sharing, the clear hook), the on-disk
persistence tier (hydrate bit-identity incl. randomized designs,
corrupt-payload fallback), and the level patcher that splices bounded
structural edits into an existing layout instead of rebuilding.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from dataclasses import replace

from repro.designs.generator import DesignSpec, generate_design
from repro.netlist.edit import insert_buffer, remove_buffer, resize_gate
from repro.obs.metrics import counter
from repro.service.store import DiskStore
from repro.timing import graph as graph_mod
from repro.timing import kernel as K
from repro.timing.sta import STAEngine
from tests.conftest import SMALL_SPEC
from tests.timing.strategies import design_specs


@pytest.fixture(autouse=True)
def _isolated_layout_tiers():
    """Every test starts with empty process cache and no disk tier."""
    K.clear_layout_cache()
    K.set_layout_disk_store(None)
    yield
    K.clear_layout_cache()
    K.set_layout_disk_store(None)


def _spec(seed: int) -> DesignSpec:
    return DesignSpec(
        f"lp-{seed}", seed=seed, n_flops=6, n_inputs=3, n_outputs=2,
        depth_range=(2, 5),
    )


def _timed_engine(design):
    # The kernel is pinned: these tests exercise the vector layout
    # tiers and must mean the same on the scalar-oracle CI leg.
    engine = STAEngine(
        design.netlist, design.constraints, design.placement,
        replace(design.sta_config, kernel="vector"),
    )
    engine.update_timing()
    return engine


def _setup_slacks(engine) -> "dict[str, float]":
    return {s.name: s.slack for s in engine.setup_slacks()}


class TestProcessCache:
    def test_lru_evicts_at_max(self, monkeypatch):
        monkeypatch.setattr(K, "_LAYOUT_CACHE_MAX", 2)
        for seed in (1, 2, 3):
            _timed_engine(generate_design(_spec(seed)))
        assert len(K._layout_cache) == 2

    def test_hit_clones_and_shares_structural_arrays(self, small_design):
        first = _timed_engine(small_design)
        cached = next(iter(K._layout_cache.values()))
        hits0 = counter("kernel.layout_cache_hits").value
        second = _timed_engine(small_design)
        assert counter("kernel.layout_cache_hits").value == hits0 + 1
        clone = second._layout
        for name in ("order", "pos_of", "level_ptr", "in_ptr", "in_edge",
                     "node_level", "edge_src", "edge_is_net"):
            assert getattr(clone, name) is getattr(cached, name), name
        # Working arrays are private per engine.
        assert clone.edge_delay is not cached.edge_delay
        assert clone.edge_out_slew is not cached.edge_out_slew
        assert _setup_slacks(second) == _setup_slacks(first)

    def test_clear_layout_cache(self, small_design):
        _timed_engine(small_design)
        assert K._layout_cache
        K.clear_layout_cache()
        assert not K._layout_cache


class TestDiskTier:
    def _attach(self, tmp_path) -> DiskStore:
        store = DiskStore(tmp_path / "store")
        K.set_layout_disk_store(store)
        return store

    def test_cold_build_persists_then_hydrates(self, tmp_path, small_design):
        self._attach(tmp_path)
        warm = _timed_engine(small_design)
        misses0 = counter("kernel.layout_disk_misses").value
        hits0 = counter("kernel.layout_disk_hits").value
        K.clear_layout_cache()  # simulate a new process
        cold = _timed_engine(small_design)
        assert counter("kernel.layout_disk_hits").value == hits0 + 1
        assert counter("kernel.layout_disk_misses").value == misses0
        assert _setup_slacks(cold) == _setup_slacks(warm)

    def test_hydrated_layout_bit_identical_to_fresh(
        self, tmp_path, small_design
    ):
        self._attach(tmp_path)
        _timed_engine(small_design)
        K.clear_layout_cache()
        hydrated = _timed_engine(small_design)._layout
        K.set_layout_disk_store(None)
        K.clear_layout_cache()
        fresh = _timed_engine(small_design)._layout
        for name in K._LAYOUT_ARRAY_FIELDS:
            assert np.array_equal(
                getattr(hydrated, name), getattr(fresh, name)
            ), name
        for name in K._LAYOUT_LIST_FIELDS:
            assert getattr(hydrated, name) == getattr(fresh, name), name
        for name in K._LAYOUT_LEVEL_FIELDS:
            got = getattr(hydrated, name)
            want = getattr(fresh, name)
            assert len(got) == len(want), name
            for a, b in zip(got, want):
                assert np.array_equal(a, b), name

    def test_corrupt_payload_degrades_to_fresh_build(
        self, tmp_path, small_design
    ):
        store = self._attach(tmp_path)
        warm = _timed_engine(small_design)
        (entry,) = store.entries()
        entry.write_bytes(b"not a pickle")
        K.clear_layout_cache()
        misses0 = counter("kernel.layout_disk_misses").value
        cold = _timed_engine(small_design)
        assert counter("kernel.layout_disk_misses").value == misses0 + 1
        assert _setup_slacks(cold) == _setup_slacks(warm)

    def test_schema_mismatch_is_a_miss(self, small_design):
        engine = _timed_engine(small_design)
        payload = K.layout_to_payload(engine._layout)
        payload["schema"] = K.LAYOUT_SCHEMA + 1
        assert K.layout_from_payload(payload, engine.graph) is None

    def test_slot_count_mismatch_is_a_miss(self, small_design):
        engine = _timed_engine(small_design)
        payload = K.layout_to_payload(engine._layout)
        payload["n_node_slots"] += 1
        assert K.layout_from_payload(payload, engine.graph) is None

    @settings(max_examples=8, deadline=None)
    @given(spec=design_specs(max_flops=8))
    def test_hydrate_bit_identity_randomized(self, tmp_path_factory, spec):
        K.clear_layout_cache()
        root = tmp_path_factory.mktemp("layout-store")
        K.set_layout_disk_store(DiskStore(root))
        try:
            design = generate_design(spec)
            warm = _timed_engine(design)
            K.clear_layout_cache()
            cold = _timed_engine(design)
            assert _setup_slacks(cold) == _setup_slacks(warm)
            for name in K._LAYOUT_ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(cold._layout, name), getattr(warm._layout, name)
                ), name
        finally:
            K.set_layout_disk_store(None)
            K.clear_layout_cache()


def _loaded_net(design):
    for gate in design.netlist.combinational_gates():
        if gate.startswith("ckbuf"):
            continue
        net = design.netlist.gate(gate).connections.get("Z")
        if net is None:
            continue
        if [r for r in design.netlist.net_loads(net) if not r.is_port]:
            return net
    return None


class TestLevelPatching:
    def test_buffer_insert_patches_instead_of_rebuilding(self):
        design = generate_design(SMALL_SPEC)
        engine = _timed_engine(design)
        net = _loaded_net(design)
        patches0 = counter("kernel.layout_patches").value
        fallbacks0 = counter("kernel.layout_patch_fallbacks").value
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        assert counter("kernel.layout_patches").value == patches0 + 1
        assert counter("kernel.layout_patch_fallbacks").value == fallbacks0
        reference = _timed_engine(design)
        assert _setup_slacks(engine) == _setup_slacks(reference)

    def test_insert_then_revert_round_trip(self):
        design = generate_design(SMALL_SPEC)
        engine = _timed_engine(design)
        baseline = _setup_slacks(engine)
        net = _loaded_net(design)
        patches0 = counter("kernel.layout_patches").value
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        buffer_name = change.gates[0]
        inverse = remove_buffer(design.netlist, buffer_name)
        inverse.gates.append(buffer_name)
        inverse.nets.extend(change.nets)
        engine.apply_change(inverse)
        assert counter("kernel.layout_patches").value == patches0 + 2
        assert _setup_slacks(engine) == baseline

    def test_random_edit_sequence_matches_full_rebuild(self):
        import random

        design = generate_design(SMALL_SPEC)
        engine = _timed_engine(design)
        rng = random.Random(7)
        patches0 = counter("kernel.layout_patches").value
        gates = [
            g for g in design.netlist.combinational_gates()
            if not g.startswith("ckbuf")
        ]
        inserted: "list" = []
        for _ in range(12):
            move = rng.choice(("resize", "insert", "remove"))
            if move == "resize":
                change = resize_gate(
                    design.netlist, rng.choice(gates), up=rng.random() < 0.5
                )
                if change is None:
                    continue
            elif move == "insert":
                net = _loaded_net(design)
                if net is None:
                    continue
                change = insert_buffer(
                    design.netlist, net, "BUF_X2",
                    placement=design.placement,
                )
                inserted.append(change)
            else:
                if not inserted:
                    continue
                last = inserted.pop()
                name = last.gates[0]
                change = remove_buffer(design.netlist, name)
                change.gates.append(name)
                change.nets.extend(last.nets)
            engine.apply_change(change)
        assert counter("kernel.layout_patches").value > patches0
        reference = _timed_engine(design)
        got = _setup_slacks(engine)
        want = _setup_slacks(reference)
        assert got.keys() == want.keys()
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-9), name

    def test_journal_overflow_falls_back_to_rebuild(self, monkeypatch):
        design = generate_design(SMALL_SPEC)
        engine = _timed_engine(design)
        monkeypatch.setattr(graph_mod, "_JOURNAL_MAX", 0)
        fallbacks0 = counter("kernel.layout_patch_fallbacks").value
        net = _loaded_net(design)
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        assert (
            counter("kernel.layout_patch_fallbacks").value == fallbacks0 + 1
        )
        reference = _timed_engine(design)
        assert _setup_slacks(engine) == _setup_slacks(reference)

    def test_touched_since_reports_edit_slots(self):
        design = generate_design(SMALL_SPEC)
        engine = _timed_engine(design)
        version = engine.graph.structure_version
        net = _loaded_net(design)
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        touched = engine.graph.touched_since(version)
        assert touched is not None
        nodes, edges = touched
        assert nodes and edges
        assert engine.graph.touched_since(
            engine.graph.structure_version
        ) == (set(), set())
