"""Multi-clock-domain analysis tests."""

import pytest

from repro.designs.generator import DesignSpec, generate_design
from repro.timing.slack import endpoint_clock_map
from tests.conftest import engine_for

MC_SPEC = DesignSpec(
    "mc", seed=9, n_flops=20, n_inputs=4, n_outputs=3,
    depth_range=(3, 8), n_clock_domains=2,
)


@pytest.fixture(scope="module")
def mc_design():
    return generate_design(MC_SPEC)


@pytest.fixture(scope="module")
def mc_engine(mc_design):
    engine = engine_for(mc_design)
    engine.update_timing()
    return engine


class TestGeneration:
    def test_two_clock_ports(self, mc_design):
        assert "clk" in mc_design.netlist.ports
        assert "clk1" in mc_design.netlist.ports

    def test_two_calibrated_clocks(self, mc_design):
        clocks = mc_design.constraints.clocks
        assert set(clocks) == {"clk", "clk1"}
        assert all(c.period > 1.0 for c in clocks.values())

    def test_flops_split_between_domains(self, mc_engine, mc_design):
        clock_map = endpoint_clock_map(
            mc_engine.graph, mc_design.constraints
        )
        names = {c.name for c in clock_map.values()}
        assert names == {"clk", "clk1"}


class TestClockMap:
    def test_every_endpoint_resolved(self, mc_engine, mc_design):
        clock_map = endpoint_clock_map(
            mc_engine.graph, mc_design.constraints
        )
        assert set(clock_map) == set(mc_engine.graph.endpoints)

    def test_flop_endpoints_match_their_tree(self, mc_engine, mc_design):
        """An endpoint whose clock buffers are named after clkX must map
        to clkX."""
        graph = mc_engine.graph
        clock_map = endpoint_clock_map(graph, mc_design.constraints)

        checked = 0
        for node_id, info in graph.endpoints.items():
            if info.ck_node is None:
                continue
            path = mc_engine.crpr.path_of(info.ck_node)
            buffer_names = [
                graph.edge(e).gate for e in path if graph.edge(e).gate
            ]
            if not buffer_names:
                continue
            domain = "clk1" if "_clk1_" in buffer_names[0] else "clk"
            assert clock_map[node_id].name == domain
            checked += 1
        assert checked > 5

    def test_single_clock_designs_trivially_map(self, small_engine):
        clock_map = endpoint_clock_map(
            small_engine.graph, small_engine.constraints
        )
        assert len({c.name for c in clock_map.values()}) == 1


class TestAnalysis:
    def test_slacks_use_domain_periods(self, mc_engine, mc_design):
        """Identical arrivals in different domains get different slack."""
        clock_map = endpoint_clock_map(
            mc_engine.graph, mc_design.constraints
        )
        for s in mc_engine.setup_slacks():
            clock = clock_map[s.node]
            # required - arrival must reflect that endpoint's period:
            # required = capture + T - setup - unc, so required grows
            # with T; verify the required is consistent with the clock.
            assert s.required < clock.period + 1e4
            assert s.required > clock.period - 1e4

    def test_mgba_flow_on_multiclock(self, mc_design):
        from repro.mgba.flow import MGBAConfig, MGBAFlow

        engine = engine_for(mc_design)
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=8, solver="direct")
        ).run(engine)
        assert result.pass_ratio_mgba > result.pass_ratio_gba
        assert result.pass_ratio_mgba > 0.9

    def test_pba_invariant_holds_across_domains(self, mc_engine):
        from repro.pba.engine import PBAEngine
        from repro.pba.enumerate import enumerate_worst_paths

        paths = enumerate_worst_paths(mc_engine.graph, mc_engine.state, 5)
        PBAEngine(mc_engine).analyze(paths)
        for path in paths:
            assert path.gba_slack <= path.pba_slack + 1e-9
