"""Incremental-update correctness: always identical to full recompute.

These are the load-bearing tests for the optimizer — a silent
incremental drift would corrupt every closure result downstream.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.edit import insert_buffer, remove_buffer, resize_gate
from tests.conftest import SMALL_SPEC, engine_for
from repro.designs.generator import generate_design


def _fresh():
    design = generate_design(SMALL_SPEC)
    engine = engine_for(design)
    engine.update_timing()
    return design, engine


def _assert_matches_full(engine, design):
    """Endpoint slacks and arrivals must equal a from-scratch engine."""
    reference = engine_for(design)
    reference.update_timing()
    got = {s.name: s.slack for s in engine.setup_slacks()}
    want = {s.name: s.slack for s in reference.setup_slacks()}
    assert got.keys() == want.keys()
    for name in want:
        assert got[name] == pytest.approx(want[name], abs=1e-6), name
    got_h = {s.name: s.slack for s in engine.hold_slacks()}
    want_h = {s.name: s.slack for s in reference.hold_slacks()}
    for name in want_h:
        assert got_h[name] == pytest.approx(want_h[name], abs=1e-6), name


def _touchable_gates(design):
    return [
        g for g in design.netlist.combinational_gates()
        if not g.startswith("ckbuf")
    ]


class TestResize:
    def test_single_upsize(self):
        design, engine = _fresh()
        gate = _touchable_gates(design)[0]
        change = resize_gate(design.netlist, gate, up=True)
        assert change is not None
        engine.apply_change(change)
        _assert_matches_full(engine, design)

    def test_resize_chain(self):
        design, engine = _fresh()
        for gate in _touchable_gates(design)[:8]:
            change = resize_gate(design.netlist, gate, up=True)
            if change is not None:
                engine.apply_change(change)
        _assert_matches_full(engine, design)

    def test_upsize_then_downsize_roundtrip(self):
        design, engine = _fresh()
        baseline = {s.name: s.slack for s in engine.setup_slacks()}
        gate = _touchable_gates(design)[3]
        engine.apply_change(resize_gate(design.netlist, gate, up=True))
        engine.apply_change(resize_gate(design.netlist, gate, up=False))
        restored = {s.name: s.slack for s in engine.setup_slacks()}
        for name, value in baseline.items():
            assert restored[name] == pytest.approx(value, abs=1e-9)

    def test_incremental_visits_fewer_nodes_than_full(self):
        design, engine = _fresh()
        from repro.timing.incremental import apply_change_incremental

        gate = _touchable_gates(design)[-1]
        change = resize_gate(design.netlist, gate, up=True)
        visited = apply_change_incremental(engine, change)
        assert 0 < visited < engine.graph.node_count()


def _loaded_net(design):
    """A data net with gate loads (buffer insertion needs loads)."""
    for gate in _touchable_gates(design):
        net = design.netlist.gate(gate).connections.get("Z")
        if net is None:
            continue
        loads = [
            r for r in design.netlist.net_loads(net) if not r.is_port
        ]
        if loads:
            return net
    raise AssertionError("design has no loaded data net")


class TestBufferEdits:
    def test_insert_buffer(self):
        design, engine = _fresh()
        net = _loaded_net(design)
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        _assert_matches_full(engine, design)

    def test_insert_then_remove(self):
        design, engine = _fresh()
        net = _loaded_net(design)
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        buffer_name = change.gates[0]
        inverse = remove_buffer(design.netlist, buffer_name)
        inverse.gates.append(buffer_name)
        inverse.nets.extend(change.nets)
        design.placement.locations.pop(buffer_name, None)
        engine.apply_change(inverse)
        _assert_matches_full(engine, design)

    def test_depths_refresh_after_buffer(self):
        """Buffer insertion must update AOCV depths design-wide."""
        design, engine = _fresh()
        net = _loaded_net(design)
        change = insert_buffer(
            design.netlist, net, "BUF_X2", placement=design.placement
        )
        engine.apply_change(change)
        from repro.aocv.depth import compute_gba_depths

        assert engine.gba_depths == compute_gba_depths(design.netlist)


class TestWeightsInteraction:
    def test_weights_survive_incremental_edits(self):
        design, engine = _fresh()
        weights = {g: 0.9 for g in _touchable_gates(design)[:5]}
        engine.set_gate_weights(weights)
        engine.update_timing()
        gate = _touchable_gates(design)[10]
        engine.apply_change(resize_gate(design.netlist, gate, up=True))
        reference = engine_for(design)
        reference.set_gate_weights(weights)
        reference.update_timing()
        got = {s.name: s.slack for s in engine.setup_slacks()}
        want = {s.name: s.slack for s in reference.setup_slacks()}
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-6)


@settings(max_examples=8, deadline=None)
@given(plan=st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                     min_size=1, max_size=6))
def test_random_edit_sequences_match_full(plan):
    """Any mix of resizes stays consistent with full recompute."""
    design, engine = _fresh()
    gates = _touchable_gates(design)
    for up, idx in plan:
        gate = gates[idx % len(gates)]
        change = resize_gate(design.netlist, gate, up=up)
        if change is not None:
            engine.apply_change(change)
    _assert_matches_full(engine, design)
