"""Setup/hold slack extraction and required-time tests."""

import math

import pytest

from repro.designs.paper_example import build_fig2_design
from repro.timing.slack import (
    CheckKind,
    SlackSummary,
    compute_required_times,
    gate_worst_slacks,
)
from repro.timing.sta import STAEngine


class TestFig2Slacks:
    def test_setup_slack_values(self, fig2_engine):
        slacks = {s.name: s.slack for s in fig2_engine.setup_slacks()}
        # T = 700: the 740 ps GBA path violates by 40, the 510 ps side
        # path has 190 to spare.
        assert slacks["FF4/D"] == pytest.approx(-40.0)
        assert slacks["FF5/D"] == pytest.approx(190.0)

    def test_violating_endpoints_sorted_worst_first(self, fig2_engine):
        violations = fig2_engine.violating_endpoints()
        assert [v.name for v in violations] == ["FF4/D"]

    def test_period_shift_moves_slack_linearly(self):
        tight = build_fig2_design(period=600.0)
        engine = STAEngine(tight.netlist, tight.constraints, None,
                           tight.sta_config)
        slacks = {s.name: s.slack for s in engine.setup_slacks()}
        assert slacks["FF4/D"] == pytest.approx(-140.0)


class TestSummary:
    def test_from_slacks_aggregates(self, fig2_engine):
        summary = fig2_engine.summary(CheckKind.SETUP)
        assert summary.wns == pytest.approx(-40.0)
        assert summary.tns == pytest.approx(-40.0)
        assert summary.violations == 1
        assert summary.endpoints == 4  # FF1/D, FF2/D, FF4/D, FF5/D

    def test_empty_summary(self):
        summary = SlackSummary.from_slacks(CheckKind.SETUP, [])
        assert summary.wns == 0.0 and summary.endpoints == 0

    def test_tns_only_sums_negatives(self, small_engine):
        summary = small_engine.summary(CheckKind.SETUP)
        slacks = [s.slack for s in small_engine.setup_slacks()]
        assert summary.tns == pytest.approx(sum(s for s in slacks if s < 0))
        assert summary.wns == pytest.approx(min(slacks))


class TestHold:
    def test_hold_slacks_cover_flop_endpoints(self, small_engine):
        holds = small_engine.hold_slacks()
        flop_endpoints = [
            n for n in small_engine.graph.endpoint_nodes()
            if small_engine.graph.endpoints[n].gate is not None
        ]
        assert len(holds) == len(flop_endpoints)

    def test_hold_uses_early_data_late_clock(self, fig2_engine):
        holds = {s.name: s for s in fig2_engine.hold_slacks()}
        # Zero hold time and clock at 0, so hold slack == the *early*
        # (minimum) data arrival: the 5-gate FF2->K1->G3..G6 short path
        # at 100 ps per underated gate = 500 ps — not the 740 ps late
        # path.
        assert holds["FF4/D"].slack == pytest.approx(500.0)


class TestRequiredTimes:
    def test_required_at_endpoint_matches_slack(self, small_engine):
        required = compute_required_times(
            small_engine.graph, small_engine.state, small_engine.constraints
        )
        for s in small_engine.setup_slacks():
            assert required[s.node] == pytest.approx(s.required)

    def test_required_decreases_backward_along_path(self, small_engine):
        """required(src) <= required(dst) - delay along every data edge."""
        from repro.timing.propagation import effective_late

        graph, state = small_engine.graph, small_engine.state
        required = compute_required_times(
            graph, state, small_engine.constraints
        )
        for edge in graph.live_edges():
            if graph.node(edge.src).is_clock_tree:
                continue
            if graph.node(edge.dst).is_clock_tree:
                continue
            if math.isinf(required[edge.dst]):
                continue
            assert (
                required[edge.src]
                <= required[edge.dst] - effective_late(state, edge) + 1e-6
            )

    def test_gate_worst_slack_bounded_by_wns(self, small_engine):
        required = compute_required_times(
            small_engine.graph, small_engine.state, small_engine.constraints
        )
        gate_slacks = gate_worst_slacks(
            small_engine.graph, small_engine.state, required
        )
        assert gate_slacks
        wns = small_engine.summary(CheckKind.SETUP).wns
        assert min(gate_slacks.values()) == pytest.approx(wns, abs=1e-6)
