"""Vector-kernel equivalence gate: bit-identical to the scalar oracle.

Every assertion here is exact (``np.array_equal`` / ``==``), not
approximate — the vectorized kernel is only allowed to ship because it
reproduces the scalar engine's IEEE-754 results bit for bit, on full
updates, mGBA-weighted updates, cached (arrival-only) re-updates, and
post-edit incremental states, across the fixture designs, the design
suite, and hypothesis-random reconvergent netlists.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import repro.netlist.edit as edit_mod
from repro.designs.generator import generate_design
from repro.designs.suite import build_design
from repro.errors import TimingError
from repro.netlist.edit import insert_buffer, resize_gate
from repro.obs.metrics import counter
from repro.timing import kernel as kernel_mod
from repro.timing.sta import STAEngine, resolve_kernel
from tests.conftest import SMALL_SPEC
from tests.timing.strategies import design_specs


def _engine(design, kernel: str) -> STAEngine:
    return STAEngine(
        design.netlist, design.constraints, design.placement,
        replace(design.sta_config, kernel=kernel),
    )


def _pair(factory):
    """(scalar, vector) engines over independently built design copies.

    The per-process buffer-name counter is reset before each build so
    edit sequences applied to both copies create identically named
    instances (names feed the ``gate_slacks`` ordering contract).
    """
    edit_mod._uid = itertools.count()
    scalar = _engine(factory(), "scalar")
    edit_mod._uid = itertools.count()
    vector = _engine(factory(), "vector")
    return scalar, vector


def _live_ids(engine) -> list[int]:
    return sorted(n.id for n in engine.graph.live_nodes())


def _assert_states_identical(scalar: STAEngine, vector: STAEngine) -> None:
    ids = _live_ids(scalar)
    assert ids == _live_ids(vector)
    for attr in ("arrival_late", "arrival_early", "slew"):
        a = getattr(scalar.state, attr)[ids]
        b = getattr(vector.state, attr)[ids]
        assert np.array_equal(a, b), attr


def _assert_results_identical(scalar: STAEngine, vector: STAEngine) -> None:
    _assert_states_identical(scalar, vector)
    for kind in ("setup_slacks", "hold_slacks"):
        a = {s.name: s.slack for s in getattr(scalar, kind)()}
        b = {s.name: s.slack for s in getattr(vector, kind)()}
        assert a == b, kind
    req_s = scalar.required_times()
    req_v = vector.required_times()
    ids = _live_ids(scalar)
    assert np.array_equal(
        np.asarray(req_s)[ids], np.asarray(req_v)[ids]
    )
    gs, gv = scalar.gate_slacks(), vector.gate_slacks()
    assert gs == gv
    assert list(gs) == list(gv)  # insertion order is part of the contract


def _weights_for(netlist, scale: float = 0.03) -> dict[str, float]:
    gates = sorted(netlist.gates)
    return {g: 1.0 + scale * (i % 7) / 7.0 for i, g in enumerate(gates)}


# ----------------------------------------------------------------------
# Full updates
# ----------------------------------------------------------------------
class TestFullUpdateEquivalence:
    def test_fixture_design(self):
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        scalar.update_timing()
        vector.update_timing()
        _assert_results_identical(scalar, vector)

    @pytest.mark.parametrize("name", ["D1", "D5"])
    def test_suite_designs(self, name):
        scalar, vector = _pair(lambda: build_design(name))
        scalar.update_timing()
        vector.update_timing()
        _assert_results_identical(scalar, vector)

    def test_weighted_update(self):
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        design_weights = _weights_for(scalar.netlist)
        for engine in (scalar, vector):
            engine.update_timing()
            engine.set_gate_weights(design_weights)
            engine.update_timing()
        _assert_results_identical(scalar, vector)

    def test_cached_arrival_only_update_is_identical(self):
        """Second vector update hits the flow cache, same results."""
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        scalar.update_timing()
        vector.update_timing()
        hits = counter("kernel.arrival_only_updates").value
        vector.set_gate_weights(_weights_for(vector.netlist))
        scalar.set_gate_weights(_weights_for(scalar.netlist))
        vector.update_timing()
        scalar.update_timing()
        assert counter("kernel.arrival_only_updates").value == hits + 1
        _assert_results_identical(scalar, vector)

    def test_edit_invalidates_flow_cache(self):
        """A resize must force a real delay-calc pass, not a cache hit."""
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        scalar.update_timing()
        vector.update_timing()
        for engine in (scalar, vector):
            change = resize_gate(
                engine.netlist,
                sorted(engine.netlist.combinational_gates())[0],
                up=True,
            )
            assert change is not None
            engine.apply_change(change)
        _assert_results_identical(scalar, vector)


# ----------------------------------------------------------------------
# Incremental updates after edits
# ----------------------------------------------------------------------
def _apply_edits(engine: STAEngine) -> None:
    """A deterministic edit mix: resizes plus a buffer insertion."""
    gates = sorted(
        g for g in engine.netlist.combinational_gates()
        if not g.startswith("ckbuf")
    )
    for gate in gates[:4]:
        change = resize_gate(engine.netlist, gate, up=True)
        if change is not None:
            engine.apply_change(change)
    nets = sorted(
        n for n in engine.netlist.nets
        if len(engine.netlist.net_loads(n)) >= 2
        and engine.netlist.net_driver(n) is not None
        and not n.startswith("clk")
    )
    if nets:
        engine.apply_change(
            insert_buffer(engine.netlist, nets[0], "BUF_X2")
        )
    for gate in gates[4:6]:
        change = resize_gate(engine.netlist, gate, up=False)
        if change is not None:
            engine.apply_change(change)


class TestIncrementalEquivalence:
    def test_post_edit_states_identical(self):
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        scalar.update_timing()
        vector.update_timing()
        edit_mod._uid = itertools.count()
        _apply_edits(scalar)
        edit_mod._uid = itertools.count()
        _apply_edits(vector)
        _assert_results_identical(scalar, vector)

    def test_weighted_then_edited(self):
        scalar, vector = _pair(lambda: generate_design(SMALL_SPEC))
        for engine in (scalar, vector):
            engine.update_timing()
            engine.set_gate_weights(_weights_for(engine.netlist))
            engine.update_timing()
        edit_mod._uid = itertools.count()
        _apply_edits(scalar)
        edit_mod._uid = itertools.count()
        _apply_edits(vector)
        _assert_results_identical(scalar, vector)

    def test_incremental_matches_fresh_full_update(self):
        """Vector incremental state == a from-scratch vector engine."""
        edit_mod._uid = itertools.count()
        edited = _engine(generate_design(SMALL_SPEC), "vector")
        edited.update_timing()
        _apply_edits(edited)
        edit_mod._uid = itertools.count()
        fresh = _engine(generate_design(SMALL_SPEC), "vector")
        fresh.update_timing()
        edit_mod._uid = itertools.count()
        _apply_edits(fresh)
        fresh.update_timing()  # force a second full pass over same netlist
        _assert_states_identical(fresh, edited)


# ----------------------------------------------------------------------
# Hypothesis: random reconvergent designs with clock trees
# ----------------------------------------------------------------------
class TestRandomDesigns:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=design_specs())
    def test_full_and_weighted_equivalence(self, spec):
        scalar, vector = _pair(lambda: generate_design(spec))
        scalar.update_timing()
        vector.update_timing()
        _assert_states_identical(scalar, vector)
        weights = _weights_for(scalar.netlist)
        for engine in (scalar, vector):
            engine.set_gate_weights(weights)
            engine.update_timing()
        _assert_results_identical(scalar, vector)

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=design_specs(max_flops=10))
    def test_incremental_after_edit_equivalence(self, spec):
        scalar, vector = _pair(lambda: generate_design(spec))
        scalar.update_timing()
        vector.update_timing()
        edit_mod._uid = itertools.count()
        _apply_edits(scalar)
        edit_mod._uid = itertools.count()
        _apply_edits(vector)
        _assert_states_identical(scalar, vector)


# ----------------------------------------------------------------------
# Kernel selection and fallback
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STA_KERNEL", "vector")
        assert resolve_kernel("scalar") == "scalar"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STA_KERNEL", "scalar")
        assert resolve_kernel(None) == "scalar"

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_STA_KERNEL", raising=False)
        assert resolve_kernel(None) == "vector"

    def test_unknown_kernel_raises(self):
        with pytest.raises(TimingError):
            resolve_kernel("simd")

    def test_vector_failure_falls_back_to_scalar(self, monkeypatch):
        design = generate_design(SMALL_SPEC)
        vector = _engine(design, "vector")
        reference = _engine(generate_design(SMALL_SPEC), "scalar")
        reference.update_timing()
        before = counter("kernel.fallbacks").value

        def boom(*args, **kwargs):
            raise RuntimeError("injected kernel failure")

        monkeypatch.setattr(kernel_mod, "_propagate_full", boom)
        vector.update_timing()
        assert counter("kernel.fallbacks").value == before + 1
        _assert_states_identical(reference, vector)


# ----------------------------------------------------------------------
# Layout reuse
# ----------------------------------------------------------------------
class TestLayoutLifecycle:
    def test_weight_refresh_reuses_layout(self):
        engine = _engine(generate_design(SMALL_SPEC), "vector")
        engine.update_timing()
        layout = engine._layout
        engine.set_gate_weights({"ff0": 1.01})
        engine.update_timing()
        assert engine._layout is layout

    def test_structural_edit_rebuilds_layout(self):
        edit_mod._uid = itertools.count()
        engine = _engine(generate_design(SMALL_SPEC), "vector")
        engine.update_timing()
        layout = engine._layout
        nets = sorted(
            n for n in engine.netlist.nets
            if len(engine.netlist.net_loads(n)) >= 2
            and engine.netlist.net_driver(n) is not None
            and not n.startswith("clk")
        )
        engine.apply_change(
            insert_buffer(engine.netlist, nets[0], "BUF_X2")
        )
        engine.update_timing()
        assert engine._layout is not layout
