"""Delay-calculation tests (NLDM lookup + Elmore wires)."""

import pytest

from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection
from repro.netlist.placement import Placement
from repro.timing.delaycalc import DelayCalculator, segment_length
from repro.timing.graph import EdgeKind, TimingGraph

LIB = make_default_library()
R = 1e-6   # kOhm/nm
C = 2e-4   # fF/nm


def _fanout():
    n = Netlist("t", LIB)
    n.add_port("a", PortDirection.INPUT)
    n.add_gate("drv", "INV_X1", {"A": "a", "Z": "w"})
    n.add_gate("s1", "INV_X1", {"A": "w", "Z": "z1"})
    n.add_gate("s2", "INV_X2", {"A": "w", "Z": "z2"})
    return n


def _placement():
    p = Placement()
    p.place("drv", 0, 0)
    p.place("s1", 10_000, 0)       # 10 um
    p.place("s2", 0, 20_000)       # 20 um
    return p


class TestLoads:
    def test_pin_only_load_without_placement(self):
        n = _fanout()
        calc = DelayCalculator(n, None, R, C)
        expected = (
            LIB.cell("INV_X1").pin("A").capacitance
            + LIB.cell("INV_X2").pin("A").capacitance
        )
        assert calc.output_load("w") == pytest.approx(expected)

    def test_wire_cap_added_with_placement(self):
        n = _fanout()
        calc = DelayCalculator(n, _placement(), R, C)
        wire = C * (10_000 + 20_000)
        assert calc.net_wire_capacitance("w") == pytest.approx(wire)
        assert calc.output_load("w") == pytest.approx(
            n.net_load_capacitance("w") + wire
        )

    def test_undriven_net_has_no_wire(self):
        n = _fanout()
        n.add_net("orphan")
        calc = DelayCalculator(n, _placement(), R, C)
        assert calc.net_wire_capacitance("orphan") == 0.0


class TestSegmentLength:
    def test_manhattan(self):
        assert segment_length(
            _placement(), PinRef("drv", "Z"), PinRef("s2", "A")
        ) == 20_000

    def test_unplaced_is_zero(self):
        assert segment_length(
            _placement(), PinRef("drv", "Z"), PinRef("ghost", "A")
        ) == 0.0

    def test_no_placement_is_zero(self):
        assert segment_length(
            None, PinRef("drv", "Z"), PinRef("s1", "A")
        ) == 0.0


class TestEdgeDelays:
    def test_net_edge_elmore(self):
        n = _fanout()
        g = TimingGraph(n)
        calc = DelayCalculator(n, _placement(), R, C)
        edge = next(
            e for e in g.live_edges()
            if e.kind is EdgeKind.NET and g.node(e.dst).ref == PinRef("s1", "A")
        )
        delay, slew = calc.net_edge(g, edge, input_slew=17.0)
        length = 10_000
        expected = (R * length) * (
            C * length / 2 + LIB.cell("INV_X1").pin("A").capacitance
        )
        assert delay == pytest.approx(expected)
        assert slew == 17.0  # wires pass slew through

    def test_cell_edge_uses_output_net_load(self):
        n = _fanout()
        g = TimingGraph(n)
        calc = DelayCalculator(n, None, R, C)
        edge = next(
            e for e in g.live_edges()
            if e.kind is EdgeKind.CELL and e.gate == "drv"
        )
        delay, out_slew = calc.cell_edge(g, edge, input_slew=20.0)
        arc = LIB.cell("INV_X1").arc_between("A", "Z")
        load = n.net_load_capacitance("w")
        assert delay == pytest.approx(arc.delay.lookup(20.0, load))
        assert out_slew == pytest.approx(arc.output_slew.lookup(20.0, load))

    def test_heavier_load_slows_cell(self):
        n = _fanout()
        g = TimingGraph(n)
        edge = next(
            e for e in g.live_edges()
            if e.kind is EdgeKind.CELL and e.gate == "drv"
        )
        unloaded = DelayCalculator(n, None, R, C).cell_edge(g, edge, 20.0)[0]
        loaded = DelayCalculator(n, _placement(), R, C).cell_edge(
            g, edge, 20.0
        )[0]
        assert loaded > unloaded


class TestBatchedDelayCalc:
    """The vector kernel's batched entry points vs the scalar loop."""

    def _timed_graph(self):
        netlist = _fanout()
        graph = TimingGraph(netlist)
        calc = DelayCalculator(netlist, _placement(), R, C)
        return netlist, graph, calc

    def test_compute_arcs_batch_matches_cell_edge(self):
        _, graph, calc = self._timed_graph()
        cell_edges = [
            e for e in graph.live_edges() if e.kind is EdgeKind.CELL
        ]
        import numpy as np

        for edge in cell_edges:
            for slew in (0.0, 13.7, 55.0, 400.0):
                want = calc.cell_edge(graph, edge, slew)
                dst_ref = graph.node(edge.dst).ref
                net = calc.netlist.gate(dst_ref.gate).connections.get(
                    dst_ref.pin
                )
                load = calc.output_load(net) if net is not None else 0.0
                delays, slews_out = calc.compute_arcs_batch(
                    edge.arc.delay, edge.arc.output_slew,
                    np.array([slew]), np.array([load]),
                )
                assert (delays[0], slews_out[0]) == want

    def test_compute_edges_batch_matches_scalar_loop(self):
        import copy

        import numpy as np

        _, graph, calc = self._timed_graph()
        edges = sorted(graph.live_edges(), key=lambda e: e.id)
        slews = np.linspace(5.0, 60.0, len(edges))
        reference = copy.deepcopy(
            [(e.delay, e.out_slew) for e in edges]
        )
        for edge, slew in zip(edges, slews):
            calc.compute_edge(graph, edge, float(slew))
        scalar_results = [(e.delay, e.out_slew) for e in edges]
        for edge, (delay, out_slew) in zip(edges, reference):
            edge.delay, edge.out_slew = delay, out_slew
        calc.compute_edges_batch(graph, edges, slews)
        batch_results = [(e.delay, e.out_slew) for e in edges]
        assert batch_results == scalar_results
