"""Early (hold) path tracing tests."""

import pytest

from repro.timing.propagation import effective_early
from repro.timing.report import trace_early_path, trace_worst_path


class TestTraceEarlyPath:
    def test_reconstructs_early_arrival(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        for endpoint in graph.endpoint_nodes()[:6]:
            edges = trace_early_path(graph, state, endpoint)
            if not edges:
                continue
            start = graph.edge(edges[0]).src
            total = float(state.arrival_early[start])
            for edge_id in edges:
                total += effective_early(state, graph.edge(edge_id))
            assert total == pytest.approx(
                float(state.arrival_early[endpoint]), abs=1e-6
            )

    def test_early_path_no_longer_than_late(self, fig2_engine):
        """Fig. 2: late path has 6 gates, early path cuts through K1."""
        endpoint = fig2_engine.node_id("FF4", "D")
        late = trace_worst_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        early = trace_early_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        late_gates = {
            fig2_engine.graph.edge(e).gate for e in late
            if fig2_engine.graph.edge(e).gate
        }
        early_gates = {
            fig2_engine.graph.edge(e).gate for e in early
            if fig2_engine.graph.edge(e).gate
        }
        assert "G1" in late_gates and "G2" in late_gates
        assert "K1" in early_gates
        assert "G1" not in early_gates

    def test_paths_are_connected(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        endpoint = graph.endpoint_nodes()[0]
        edges = trace_early_path(graph, state, endpoint)
        for previous, current in zip(edges, edges[1:]):
            assert graph.edge(previous).dst == graph.edge(current).src
