"""Unit tests for the executor abstraction itself."""

import os
import pickle

import pytest

from repro.errors import ParallelError
from repro.obs.trace import tracing
from repro.parallel import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_ranges,
    get_executor,
    resolve_backend,
    resolve_workers,
    set_default_workers,
)

ALL_BACKENDS = list(BACKENDS)


def executor_for(backend: str, workers: int = 3):
    return {
        "serial": SerialExecutor,
        "thread": ThreadExecutor,
        "process": ProcessExecutor,
    }[backend](workers)


def square(x):
    return x * x


def fail_on_five(x):
    if x == 5:
        raise ValueError("item five is cursed")
    return x


class TestChunking:
    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_one_chunk_per_worker(self):
        chunks = chunk_ranges(10, 3)
        assert len(chunks) == 3
        assert [list(c) for c in chunks] == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9]
        ]

    def test_fewer_items_than_workers(self):
        chunks = chunk_ranges(2, 8)
        assert len(chunks) == 2
        assert sum(len(c) for c in chunks) == 2

    def test_explicit_chunk_size(self):
        chunks = chunk_ranges(10, 3, chunk_size=4)
        assert [list(c) for c in chunks] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]
        ]

    def test_chunks_cover_range_in_order(self):
        for n in (1, 5, 17, 100):
            for workers in (1, 2, 7, 16):
                flat = [
                    i for c in chunk_ranges(n, workers) for i in c
                ]
                assert flat == list(range(n))

    def test_bad_chunk_size(self):
        with pytest.raises(ParallelError):
            chunk_ranges(10, 2, chunk_size=0)


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert get_executor().backend == "serial"

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(2) == 2

    def test_cli_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        set_default_workers(3)
        try:
            assert resolve_workers() == 3
        finally:
            set_default_workers(None)
        assert resolve_workers() == 4

    def test_bad_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ParallelError):
            resolve_workers()

    def test_bad_worker_count(self):
        with pytest.raises(ParallelError):
            resolve_workers(0)
        with pytest.raises(ParallelError):
            set_default_workers(-1)

    def test_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        assert resolve_backend() == "thread"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert resolve_backend() == "process"
        assert resolve_backend("serial") == "serial"

    def test_bad_backend(self):
        with pytest.raises(ParallelError):
            resolve_backend("gpu")

    def test_workers_one_is_always_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert get_executor(1).backend == "serial"

    def test_get_executor_parallel(self):
        executor = get_executor(4, "thread")
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 4


class TestMap:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_order_preserved(self, backend):
        executor = executor_for(backend)
        assert executor.map(square, range(23)) == [
            i * i for i in range(23)
        ]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_items(self, backend):
        assert executor_for(backend).map(square, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_chunk_size_does_not_change_results(self, backend):
        executor = executor_for(backend)
        baseline = executor.map(square, range(11))
        for chunk_size in (1, 2, 5, 100):
            assert executor.map(
                square, range(11), chunk_size=chunk_size
            ) == baseline

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_exception_carries_context(self, backend):
        executor = executor_for(backend)
        with pytest.raises(ParallelError) as excinfo:
            executor.map(fail_on_five, range(8))
        err = excinfo.value
        assert "item five is cursed" in str(err)
        assert "ValueError" in str(err)
        assert err.backend == backend
        assert err.chunk >= 0
        # The worker-side traceback names the failing function.
        assert "fail_on_five" in err.child_traceback

    def test_thread_exception_chains_original(self):
        with pytest.raises(ParallelError) as excinfo:
            ThreadExecutor(2).map(fail_on_five, range(8))
        assert isinstance(excinfo.value.__cause__, ValueError)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_span_attributes(self, backend):
        executor = executor_for(backend)
        with tracing() as tracer:
            executor.map(square, range(10), label="unit.square")
        maps = [s for s in tracer.all_spans() if s.name == "parallel.map"]
        assert len(maps) == 1
        region = maps[0]
        assert region.attrs["backend"] == backend
        assert region.attrs["workers"] == executor.workers
        assert region.attrs["items"] == 10
        assert region.attrs["label"] == "unit.square"
        assert len(region.attrs["chunk_seconds"]) == region.attrs["chunks"]
        chunks = [c for c in region.children if c.name == "parallel.chunk"]
        assert len(chunks) == region.attrs["chunks"]
        assert sum(c.attrs["items"] for c in chunks) == 10

    def test_serial_executor_ignores_worker_count(self):
        assert SerialExecutor(8).workers == 1

    def test_parallel_error_is_picklable(self):
        err = ParallelError("boom", chunk=2, backend="process",
                            child_traceback="tb")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == "boom"


class TestNesting:
    def test_no_nested_process_pools(self):
        """Inside a worker process the resolved count clamps to 1."""
        executor = ProcessExecutor(2)
        counts = executor.map(_resolved_workers_in_child, range(2))
        assert counts == [1, 1]


def _resolved_workers_in_child(_):
    os.environ["REPRO_WORKERS"] = "8"
    return resolve_workers()
