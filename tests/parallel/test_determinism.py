"""Tier-1 determinism: parallel results are bit-identical to serial.

The executor contract — contiguous chunks, positional merge — plus
deterministic per-item work must make every backend produce *exactly*
the serial bytes, on the paper's 4-FF Fig. 2 example and on a generated
design.  Covered here:

* multi-corner STA (merged setup/hold slacks with their corner tags);
* per-endpoint k-worst PBA (enumeration order, GBA/PBA slacks, depth /
  distance / CRPR fields, batched endpoint slacks);
* the full mGBA flow (fitted weights, solver iterations, pass ratios).
"""

import pytest

from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.timing.corners import MultiCornerAnalysis
from repro.timing.sta import STAEngine

from tests.conftest import engine_for

PARALLEL_BACKENDS = ["thread", "process"]
WORKERS = 3


def executor(backend):
    from repro.parallel import get_executor

    return get_executor(WORKERS, backend)


def _corner_fingerprint(design, exec_or_none):
    analysis = MultiCornerAnalysis(
        design.netlist, design.constraints,
        getattr(design, "placement", None), design.sta_config,
    )
    analysis.update_all(exec_or_none)
    return (
        [(m.name, m.slack, m.corner) for m in analysis.merged_setup()],
        [(m.name, m.slack, m.corner) for m in analysis.merged_hold()],
        analysis.dominant_corner(),
    )


def _pba_fingerprint(engine, exec_obj):
    paths = enumerate_worst_paths(
        engine.graph, engine.state, 6, executor=exec_obj
    )
    pba = PBAEngine(engine)
    pba.analyze(paths, executor=exec_obj)
    return [
        (p.endpoint, p.launch, p.edges, p.gba_slack, p.pba_slack,
         p.depth, p.distance, p.crpr_credit, tuple(map(tuple,
                                                       p.contributions)))
        for p in paths
    ]


@pytest.fixture(scope="module")
def designs():
    from repro.designs.paper_example import build_fig2_design
    from repro.designs.generator import generate_design

    from tests.conftest import MEDIUM_SPEC

    return {
        "fig2": build_fig2_design(),
        "generated": generate_design(MEDIUM_SPEC),
    }


class TestCornersDeterminism:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("design_name", ["fig2", "generated"])
    def test_merged_slacks_bit_identical(self, designs, design_name,
                                         backend):
        design = designs[design_name]
        from repro.parallel import SerialExecutor

        reference = _corner_fingerprint(design, SerialExecutor())
        assert _corner_fingerprint(design, executor(backend)) == reference


class TestPBADeterminism:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("design_name", ["fig2", "generated"])
    def test_paths_bit_identical(self, designs, design_name, backend):
        design = designs[design_name]
        engine = STAEngine(
            design.netlist, design.constraints,
            getattr(design, "placement", None), design.sta_config,
        )
        engine.update_timing()
        from repro.parallel import SerialExecutor

        reference = _pba_fingerprint(engine, SerialExecutor())
        assert _pba_fingerprint(engine, executor(backend)) == reference

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_endpoint_slacks_bit_identical(self, designs, backend):
        design = designs["generated"]
        engine = STAEngine(
            design.netlist, design.constraints,
            design.placement, design.sta_config,
        )
        engine.update_timing()
        pba = PBAEngine(engine)
        endpoints = engine.graph.endpoint_nodes()[:10]
        from repro.parallel import SerialExecutor

        reference = pba.golden_endpoint_slacks(
            endpoints, k=6, executor=SerialExecutor()
        )
        assert pba.golden_endpoint_slacks(
            endpoints, k=6, executor=executor(backend)
        ) == reference


class TestFlowDeterminism:
    def _flow_fingerprint(self, design, workers, backend=None):
        engine = engine_for(design)
        result = MGBAFlow(MGBAConfig(
            k_per_endpoint=4, seed=0,
            workers=workers, parallel_backend=backend,
        )).run(engine)
        return (
            tuple(sorted(result.weights.items())),
            result.solution.iterations,
            result.mse_gba, result.mse_mgba,
            result.pass_ratio_gba, result.pass_ratio_mgba,
            tuple(s.slack for s in engine.setup_slacks()),
        )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_solver_results_bit_identical(self, designs, backend):
        design = designs["generated"]
        reference = self._flow_fingerprint(design, workers=1)
        assert self._flow_fingerprint(
            design, workers=WORKERS, backend=backend
        ) == reference

    def test_flow_span_carries_worker_attrs(self, designs):
        from repro.obs import tracing

        design = designs["generated"]
        engine = engine_for(design)
        with tracing() as tracer:
            MGBAFlow(MGBAConfig(
                k_per_endpoint=4, seed=0,
                workers=2, parallel_backend="thread",
            )).run(engine)
        runs = [s for s in tracer.all_spans() if s.name == "mgba.run"]
        assert runs and runs[0].attrs["workers"] == 2
        assert runs[0].attrs["backend"] == "thread"
        maps = [s for s in tracer.all_spans() if s.name == "parallel.map"]
        assert maps, "parallel regions must emit parallel.map spans"
        for region in maps:
            assert region.attrs["chunks"] == len(
                region.attrs["chunk_seconds"]
            )
