"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solver_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mgba", "D1", "--solver", "magic"])


class TestCommands:
    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "D10" in out

    def test_sta(self, capsys):
        assert main(["sta", "D1", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out and "Endpoint:" in out

    def test_mgba(self, capsys):
        assert main(["mgba", "D1", "--k", "5", "--solver", "direct"]) == 0
        out = capsys.readouterr().out
        assert "pass" in out and "mse" in out

    def test_closure(self, capsys):
        assert main([
            "closure", "D1", "--max-transforms", "10"
        ]) == 0
        out = capsys.readouterr().out
        assert "before" in out and "after" in out

    def test_corners(self, capsys):
        assert main(["corners", "D1"]) == 0
        out = capsys.readouterr().out
        assert "ss" in out and "merged setup WNS" in out

    def test_generate(self, tmp_path, capsys):
        assert main(["generate", "D1", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "D1.v").exists()
        assert (tmp_path / "D1.sdc").exists()
        assert (tmp_path / "D1.aocv").exists()

    def test_generated_files_parse_back(self, tmp_path):
        main(["generate", "D1", "-o", str(tmp_path)])
        from repro.aocv.table import load_aocv
        from repro.liberty.builder import make_default_library
        from repro.netlist.verilog import load_verilog
        from repro.sdc.parser import load_sdc

        netlist = load_verilog(tmp_path / "D1.v", make_default_library())
        constraints = load_sdc(tmp_path / "D1.sdc")
        table = load_aocv(tmp_path / "D1.aocv")
        assert len(netlist.gates) > 100
        assert constraints.primary_clock().period > 0
        assert table.validate_monotonic() == []
