"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solver_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mgba", "D1", "--solver", "magic"])


class TestCommands:
    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "D10" in out

    def test_sta(self, capsys):
        assert main(["sta", "D1", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out and "Endpoint:" in out

    def test_mgba(self, capsys):
        assert main(["mgba", "D1", "--k", "5", "--solver", "direct"]) == 0
        out = capsys.readouterr().out
        assert "pass" in out and "mse" in out

    def test_closure(self, capsys):
        assert main([
            "closure", "D1", "--max-transforms", "10"
        ]) == 0
        out = capsys.readouterr().out
        assert "before" in out and "after" in out

    def test_corners(self, capsys):
        assert main(["corners", "D1"]) == 0
        out = capsys.readouterr().out
        assert "ss" in out and "merged setup WNS" in out

    def test_generate(self, tmp_path, capsys):
        assert main(["generate", "D1", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "D1.v").exists()
        assert (tmp_path / "D1.sdc").exists()
        assert (tmp_path / "D1.aocv").exists()

    def test_generated_files_parse_back(self, tmp_path):
        main(["generate", "D1", "-o", str(tmp_path)])
        from repro.aocv.table import load_aocv
        from repro.liberty.builder import make_default_library
        from repro.netlist.verilog import load_verilog
        from repro.sdc.parser import load_sdc

        netlist = load_verilog(tmp_path / "D1.v", make_default_library())
        constraints = load_sdc(tmp_path / "D1.sdc")
        table = load_aocv(tmp_path / "D1.aocv")
        assert len(netlist.gates) > 100
        assert constraints.primary_clock().period > 0
        assert table.validate_monotonic() == []


class TestExplainCommand:
    def test_json_matches_documented_schema(self, capsys):
        import json

        assert main([
            "explain", "fig2", "--format", "json", "--top-k", "2"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "paper_fig2"
        assert set(payload) == {"design", "summary", "paths"}
        summary = payload["summary"]
        assert {"endpoints", "arcs", "pessimism", "removed",
                "residual", "crpr", "top_endpoints",
                "top_arcs"} <= set(summary)
        assert summary["endpoints"] == 4
        assert len(payload["paths"]) == 2
        row = payload["paths"][0]["rows"][0]
        assert {"edge", "src", "dst", "domain", "base_delay",
                "derate", "delay", "arrival", "provenance",
                "pessimism", "removed", "residual"} <= set(row)

    def test_markdown_renders_accounting(self, capsys):
        assert main(["explain", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Pessimism accounting" in out
        assert "FF4/D" in out

    def test_endpoint_narrowing(self, capsys):
        import json

        assert main([
            "explain", "fig2", "--endpoint", "FF4/D",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["endpoints"] == 1
        assert payload["paths"][0]["endpoint"] == "FF4/D"

    def test_unknown_endpoint_fails(self, capsys):
        assert main(["explain", "fig2", "--endpoint", "NO/SUCH"]) != 0


class TestServiceCommands:
    def test_batch_round_trip(self, tmp_path, capsys):
        import json

        requests = tmp_path / "queries.jsonl"
        requests.write_text(
            json.dumps({"id": 1, "op": "sta", "design": "fig2"}) + "\n"
            + json.dumps({"id": 2, "op": "pba_slacks", "design": "fig2",
                          "k": 8}) + "\n"
        )
        out_path = tmp_path / "responses.jsonl"
        code = main([
            "batch", str(requests), "-o", str(out_path),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert "2 response(s)" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in out_path.read_text().splitlines()]
        assert [r["id"] for r in records] == [1, 2]
        assert all(r["ok"] for r in records)

    def test_batch_error_exit_code(self, tmp_path, capsys):
        requests = tmp_path / "queries.jsonl"
        requests.write_text("not json\n")
        code = main([
            "batch", str(requests), "-o", str(tmp_path / "out.jsonl"),
            "--no-cache",
        ])
        assert code == 2
        capsys.readouterr()

    def test_batch_stdout(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps({"op": "sta", "design": "fig2"}) + "\n"),
        )
        assert main(["batch", "-", "--no-cache"]) == 0
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["ok"] and record["op"] == "sta"


class TestWhatIfCommand:
    CANDS = [[{"kind": "insert_buffer", "net": "n3",
               "buffer_cell": "BUF_U"}]]

    def _write(self, tmp_path):
        import json

        path = tmp_path / "cands.json"
        path.write_text(json.dumps(self.CANDS))
        return str(path)

    def test_table_output_marks_best(self, tmp_path, capsys):
        code = main(["what-if", "fig2", "--candidates",
                     self._write(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 candidate(s)" in out
        assert "best candidate:" in out
        assert "insert_buffer n3 BUF_U" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        code = main(["what-if", "fig2", "--json", "--candidates",
                     self._write(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "paper_fig2"
        assert payload["candidates"][0]["ok"] is True

    def test_eco_file_is_a_candidate(self, tmp_path, capsys):
        import json

        eco = tmp_path / "fix.eco"
        eco.write_text("insert_buffer n3 BUF_U b0 net0 G4/A L1/A\n")
        code = main(["what-if", "fig2", "--json", "--eco", str(eco)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["candidates"][0]["eco"] == [
            "insert_buffer n3 BUF_U b0 net0 G4/A L1/A"
        ]

    def test_no_candidates_is_usage_error(self, capsys):
        assert main(["what-if", "fig2"]) == 2
        assert "no candidates" in capsys.readouterr().err

    def test_unreadable_candidates_file_exits_2(self, tmp_path, capsys):
        assert main(["what-if", "fig2", "--candidates",
                     str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_malformed_candidate_exits_2(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps([[{"kind": "teleport"}]]))
        assert main(["what-if", "fig2", "--candidates", str(path)]) == 2
        assert "unknown edit kind" in capsys.readouterr().err


class TestMinPeriodCommand:
    def test_human_output(self, capsys):
        assert main(["min-period", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "clock clk" in out
        assert "min period:" in out and "bracket:" in out

    def test_json_output_with_corner(self, capsys):
        import json

        code = main(["min-period", "fig2", "--json",
                     "--corner", "ss:1.2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corner"] == "ss:1.2"
        assert payload["wns_at_period"] >= 0.0

    def test_bad_corner_spec_exits_2(self, capsys):
        assert main(["min-period", "fig2", "--corner", "nonsense"]) == 2
        capsys.readouterr()

    def test_unknown_clock_exits_2(self, capsys):
        assert main(["min-period", "fig2", "--clock", "ghost"]) == 2
        capsys.readouterr()


class TestObsReportMetrics:
    def test_missing_metrics_file_is_tolerated(self, tmp_path, capsys):
        code = main([
            "obs-report", "--metrics", str(tmp_path / "absent.json"),
        ])
        assert code == 0
        assert "missing or empty" in capsys.readouterr().out

    def test_metrics_table(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({
            "cache.hit": {"type": "counter", "value": 3},
        }))
        assert main(["obs-report", "--metrics", str(metrics)]) == 0
        assert "cache.hit" in capsys.readouterr().out

    def test_no_arguments_is_usage_error(self, capsys):
        assert main(["obs-report"]) == 2
        capsys.readouterr()


class TestServeCommand:
    def _serve(self, monkeypatch, text):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        return main(["serve", "--no-cache"])

    def test_serve_round_trip(self, tmp_path, capsys, monkeypatch):
        import json

        code = self._serve(monkeypatch, "\n".join([
            json.dumps({"id": 1, "op": "sta", "design": "fig2"}),
            json.dumps({"id": 2, "op": "stats"}),
        ]) + "\n")
        assert code == 0
        captured = capsys.readouterr()
        assert "served 2 request(s) (0 error(s))" in captured.err
        records = [json.loads(l) for l in captured.out.splitlines()]
        assert records[0]["ok"] and records[0]["request_id"]
        assert records[1]["op"] == "stats"
        assert records[1]["result"]["queries"] >= 1

    def test_serve_malformed_line_exits_2(self, capsys, monkeypatch):
        import json

        code = self._serve(
            monkeypatch,
            "garbage\n" + json.dumps({"op": "health"}) + "\n",
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "served 2 request(s) (1 error(s))" in captured.err
        records = [json.loads(l) for l in captured.out.splitlines()]
        assert records[0]["ok"] is False and "error" in records[0]
        assert records[1]["result"]["status"] == "ok"


class TestProfileFlag:
    def test_profile_writes_json_and_report_renders_it(
            self, tmp_path, capsys):
        import json

        profile_path = tmp_path / "profile.json"
        assert main([
            "--profile", str(profile_path),
            "mgba", "fig2", "--k", "5", "--solver", "direct",
        ]) == 0
        capsys.readouterr()
        data = json.loads(profile_path.read_text())
        assert data["spans_profiled"] >= 1
        assert data["rows"]
        assert main([
            "obs-report", "--profile", str(profile_path), "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "span(s) profiled" in out and "self(s)" in out

    def test_missing_profile_dir_is_usage_error(self, tmp_path, capsys):
        code = main([
            "--profile", str(tmp_path / "no_such_dir" / "p.json"),
            "designs",
        ])
        assert code == 2
        capsys.readouterr()


class TestObsReportSortTop:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main([
            "--trace", str(path),
            "sta", "fig2", "--paths", "1",
        ]) == 0
        capsys.readouterr()
        return path

    def test_sort_and_top(self, trace_path, capsys):
        assert main([
            "obs-report", str(trace_path), "--sort", "self", "--top", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "root span(s)" in out

    def test_bad_sort_rejected(self, trace_path, capsys):
        with pytest.raises(SystemExit):
            main(["obs-report", str(trace_path), "--sort", "nope"])
        capsys.readouterr()


class TestBenchHistoryCommand:
    @pytest.fixture()
    def history(self, tmp_path):
        from repro.obs.history import BenchRecord, append_record

        path = tmp_path / "history.jsonl"
        for seconds in (1.00, 1.02, 0.98, 1.35):  # injected +35% run
            append_record(path, BenchRecord(
                sha="abc123", bench="bench_smoke", fingerprint="fp",
                seconds=seconds,
            ))
        return path

    def test_list_default(self, history, capsys):
        assert main(["bench-history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "bench_smoke" in out and "runs" in out

    def test_compare_flags_regression(self, history, capsys):
        assert main(["bench-history", str(history), "--compare"]) == 0
        out = capsys.readouterr().out
        assert "regression" in out and "+35.0%" in out

    def test_check_fails_on_mature_regression(self, history, capsys):
        assert main(["bench-history", str(history), "--check"]) == 1
        assert "REGRESSION bench_smoke" in capsys.readouterr().err

    def test_check_only_warns_below_min_points(self, history, capsys):
        code = main([
            "bench-history", str(history), "--check", "--min-points", "9",
        ])
        assert code == 0
        assert "WARNING bench_smoke" in capsys.readouterr().err

    def test_check_clean_history(self, history, capsys):
        code = main([
            "bench-history", str(history), "--check", "--tolerance", "0.5",
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_markdown(self, history, capsys):
        assert main(["bench-history", str(history), "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark history" in out and "| sha |" in out

    def test_missing_history_is_empty(self, tmp_path, capsys):
        assert main([
            "bench-history", str(tmp_path / "absent.jsonl"),
        ]) == 0
        assert "(empty history)" in capsys.readouterr().out


class TestObservabilityCommands:
    def _serve(self, monkeypatch, tmp_path, lines, extra=()):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        return main([
            "serve", "--cache-dir", str(tmp_path / "cache"), *extra,
        ])

    def test_serve_error_exit_dumps_flight(self, tmp_path, capsys,
                                           monkeypatch):
        import json

        dump = tmp_path / "flight.json"
        code = self._serve(
            monkeypatch, tmp_path,
            json.dumps({"id": 1, "op": "sta", "design": "zzz"}) + "\n",
            extra=["--flight-dump", str(dump)],
        )
        assert code == 2
        captured = capsys.readouterr()
        assert f"flight recorder dumped to {dump}" in captured.err
        assert json.loads(dump.read_text())["schema_version"] == 1

    def test_serve_no_flight_dump_flag(self, tmp_path, capsys,
                                       monkeypatch):
        import json

        code = self._serve(
            monkeypatch, tmp_path,
            json.dumps({"op": "sta", "design": "zzz"}) + "\n",
            extra=["--flight-dump", str(tmp_path / "f.json"),
                   "--no-flight-dump"],
        )
        assert code == 2
        assert not (tmp_path / "f.json").exists()
        capsys.readouterr()

    def test_serve_with_slo_reports_status(self, tmp_path, capsys,
                                           monkeypatch):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({
            "schema_version": 1, "min_requests": 1,
            "latency": {"*": {"p95": 60.0}},
        }))
        code = self._serve(
            monkeypatch, tmp_path,
            json.dumps({"op": "sta", "design": "fig2"}) + "\n",
            extra=["--slo", str(spec)],
        )
        assert code == 0
        assert "SLO ok" in capsys.readouterr().err

    def test_serve_bad_slo_spec_exits_2(self, tmp_path, capsys,
                                        monkeypatch):
        spec = tmp_path / "slo.json"
        spec.write_text("{}")
        code = self._serve(monkeypatch, tmp_path, "", ["--slo", str(spec)])
        assert code == 2
        assert "serve:" in capsys.readouterr().err

    def test_serve_expose_metrics_scrapes(self, tmp_path, capsys,
                                          monkeypatch):
        import json
        import re
        import urllib.request

        real_serve = None

        def scraping_serve(service, in_stream, out_stream, **kwargs):
            # Scrape while the endpoint is alive, mid-session.
            err = capsys.readouterr().err
            match = re.search(r"http://[\d.]+:\d+/metrics", err)
            assert match, f"no endpoint URL announced: {err!r}"
            body = urllib.request.urlopen(match.group(0), timeout=5) \
                .read().decode()
            assert body.endswith("# EOF\n")
            assert 'service_requests_total{verb="sta"}' in body
            return real_serve(service, in_stream, out_stream, **kwargs)

        from repro.service import batch

        real_serve = batch.serve
        monkeypatch.setattr("repro.service.batch.serve", scraping_serve)
        monkeypatch.setattr("repro.service.serve", scraping_serve)
        code = self._serve(
            monkeypatch, tmp_path,
            json.dumps({"op": "health"}) + "\n",
            extra=["--expose-metrics", "0"],
        )
        assert code == 0

    def test_metrics_export_from_snapshot(self, tmp_path, capsys):
        import json

        from repro.obs.metrics import MetricsRegistry, labeled

        registry = MetricsRegistry()
        registry.counter(labeled("service.requests", verb="sta")).inc(5)
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(json.dumps(registry.snapshot()))
        code = main(["metrics-export", "--metrics", str(snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert 'service_requests_total{verb="sta"} 5' in out
        assert out.endswith("# EOF\n")

    def test_metrics_export_missing_snapshot_exits_2(self, tmp_path,
                                                     capsys):
        code = main(["metrics-export", "--metrics",
                     str(tmp_path / "nope.json")])
        assert code == 2
        capsys.readouterr()

    def test_slo_check_pass_and_fail_exit_codes(self, tmp_path, capsys):
        import json

        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder()
        recorder.record_request("sta", seconds=5.0, ok=True, cached=True)
        dump = tmp_path / "flight.json"
        recorder.save_json(dump)
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({
            "schema_version": 1, "min_requests": 1,
            "latency": {"*": {"p95": 10.0}},
        }))
        assert main(["slo-check", "--spec", str(spec),
                     "--flight", str(dump)]) == 0
        assert "PASS" in capsys.readouterr().out
        tight = tmp_path / "tight.json"
        tight.write_text(json.dumps({
            "schema_version": 1, "min_requests": 1,
            "latency": {"*": {"p95": 1.0}},
        }))
        assert main(["slo-check", "--spec", str(tight),
                     "--flight", str(dump)]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_slo_check_unreadable_inputs_exit_2(self, tmp_path, capsys):
        assert main(["slo-check", "--spec", str(tmp_path / "no.json"),
                     "--flight", str(tmp_path / "no2.json")]) == 2
        spec = tmp_path / "slo.json"
        spec.write_text('{"schema_version": 1, "error_rate_max": 0.1}')
        assert main(["slo-check", "--spec", str(spec),
                     "--flight", str(tmp_path / "no2.json")]) == 2
        capsys.readouterr()

    def test_obs_report_flight(self, tmp_path, capsys):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder()
        recorder.record_request("sta", design="fig2", cached=False,
                                seconds=0.2, request_id="r1-1")
        recorder.record_error("ServiceError", "bad op")
        dump = tmp_path / "flight.json"
        recorder.save_json(dump)
        assert main(["obs-report", "--flight", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "ServiceError" in out

    def test_trace_stream_is_durable_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["--trace", str(trace), "sta", "fig2"]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert records and any(r["parent"] is None for r in records)


class TestCache:
    """The ``cache`` subcommand over the on-disk artifact store."""

    def test_stats_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "artifact store" in out

    def test_warm_persists_then_hydrates(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["cache", "warm", "fig2", "--cache-dir", store]) == 0
        first = capsys.readouterr().out
        assert "persisted" in first
        assert main(["cache", "warm", "fig2", "--cache-dir", store]) == 0
        second = capsys.readouterr().out
        assert "already warm" in second
        assert main(["cache", "stats", "--cache-dir", store]) == 0
        stats = capsys.readouterr().out
        assert "layout" in stats

    def test_warm_requires_design(self, tmp_path, capsys):
        assert main(["cache", "warm",
                     "--cache-dir", str(tmp_path / "store")]) == 2
        assert "design" in capsys.readouterr().err

    def test_clear_class_and_all(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["cache", "warm", "fig2", "--cache-dir", store]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--class", "layout",
                     "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entry" in out
        assert main(["cache", "clear", "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "removed 0 entries" in out

    def test_clear_unknown_class_exits_2(self, tmp_path, capsys):
        assert main(["cache", "clear", "--class", "nope",
                     "--cache-dir", str(tmp_path / "store")]) == 2
        assert "unknown class" in capsys.readouterr().err
