"""Clock-tree builder tests."""


from repro.designs.clocktree import build_clock_tree
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection
from repro.netlist.placement import Placement
from repro.utils.rng import make_rng

LIB = make_default_library()


def _flop_field(count, seed=0):
    rng = make_rng(seed)
    netlist = Netlist("ct", LIB)
    netlist.add_port("clk", PortDirection.INPUT)
    placement = Placement()
    flops = []
    for i in range(count):
        name = f"ff{i}"
        netlist.add_gate(name, "DFF_X1")
        netlist.connect(name, "Q", f"q{i}")
        netlist.connect(name, "D", f"q{(i + 1) % count}")
        placement.place(name, rng.uniform(0, 50_000), rng.uniform(0, 50_000))
        flops.append(name)
    return netlist, placement, flops


class TestTree:
    def test_every_flop_clocked(self):
        netlist, placement, flops = _flop_field(37)
        build_clock_tree(netlist, placement, "clk", flops)
        for flop in flops:
            assert "CK" in netlist.gate(flop).connections

    def test_tree_shape_single_driver_per_buffer(self):
        netlist, placement, flops = _flop_field(37)
        buffers = build_clock_tree(netlist, placement, "clk", flops)
        for name in buffers:
            in_net = netlist.gate(name).connections["A"]
            assert netlist.net_driver(in_net) is not None

    def test_leaf_fanout_respected(self):
        netlist, placement, flops = _flop_field(64)
        build_clock_tree(netlist, placement, "clk", flops,
                         max_leaf_fanout=4)
        for net in netlist.nets:
            ck_loads = [
                r for r in netlist.net_loads(net)
                if not r.is_port and r.pin == "CK"
            ]
            assert len(ck_loads) <= 4

    def test_buffers_are_placed(self):
        netlist, placement, flops = _flop_field(20)
        buffers = build_clock_tree(netlist, placement, "clk", flops)
        for name in buffers:
            assert placement.has(name)

    def test_root_drive_scales_with_size(self):
        netlist, placement, flops = _flop_field(100)
        buffers = build_clock_tree(netlist, placement, "clk", flops)
        root = buffers[0]
        assert netlist.cell_of(root).drive_strength >= 8

    def test_empty_flop_list(self):
        netlist, placement, _ = _flop_field(3)
        assert build_clock_tree(netlist, placement, "clk", []) == []

    def test_clock_paths_share_root(self):
        """Any two flops share at least the root buffer — CRPR exists."""
        from repro.sdc.constraints import Clock, Constraints
        from repro.timing.sta import STAConfig, STAEngine

        netlist, placement, flops = _flop_field(16)
        build_clock_tree(netlist, placement, "clk", flops)
        constraints = Constraints()
        constraints.add_clock(Clock("clk", 1000.0, "clk"))
        engine = STAEngine(netlist, constraints, placement, STAConfig())
        engine.update_timing()
        cks = [engine.graph.node_of[PinRef(f, "CK")] for f in flops[:6]]
        for a in cks:
            for b in cks:
                assert engine.crpr.credit(a, b) > 0.0
