"""Synthetic-design generator tests."""


from repro.designs.generator import generate_design, scaled_spec
from repro.netlist.validate import Severity, validate_netlist
from tests.conftest import SMALL_SPEC, engine_for


class TestStructure:
    def test_deterministic(self):
        a = generate_design(SMALL_SPEC)
        b = generate_design(SMALL_SPEC)
        assert set(a.netlist.gates) == set(b.netlist.gates)
        assert a.constraints.primary_clock().period == \
            b.constraints.primary_clock().period
        for name, gate in a.netlist.gates.items():
            assert b.netlist.gate(name).cell_name == gate.cell_name
            assert b.netlist.gate(name).connections == gate.connections

    def test_different_seeds_differ(self):
        from dataclasses import replace

        a = generate_design(SMALL_SPEC)
        b = generate_design(replace(SMALL_SPEC, seed=SMALL_SPEC.seed + 1))
        assert set(a.netlist.gates) != set(b.netlist.gates) or \
            a.constraints.primary_clock().period != \
            b.constraints.primary_clock().period

    def test_no_structural_errors(self, small_design):
        errors = [
            v for v in validate_netlist(small_design.netlist)
            if v.severity is Severity.ERROR
        ]
        assert errors == []

    def test_flop_count_matches_spec(self, small_design):
        assert len(small_design.netlist.sequential_gates()) == \
            SMALL_SPEC.n_flops

    def test_everything_placed(self, small_design):
        for gate in small_design.netlist.gates:
            assert small_design.placement.has(gate), gate
        for port in small_design.netlist.ports:
            assert small_design.placement.has(port), port

    def test_scaled_spec(self):
        bigger = scaled_spec(SMALL_SPEC, 2.0)
        assert bigger.n_flops == 2 * SMALL_SPEC.n_flops
        tiny = scaled_spec(SMALL_SPEC, 0.0)
        assert tiny.n_flops == 4  # floor


class TestCalibration:
    def test_violation_fraction_near_quantile(self, small_design):
        """The probe calibration leaves ~(1-q) endpoints violating."""
        engine = engine_for(small_design)
        slacks = engine.setup_slacks()
        fraction = sum(1 for s in slacks if s.slack < 0) / len(slacks)
        target = 1.0 - SMALL_SPEC.violation_quantile
        assert abs(fraction - target) < 0.15

    def test_tighter_quantile_means_more_violations(self):
        from dataclasses import replace

        loose = generate_design(replace(SMALL_SPEC, violation_quantile=0.95))
        tight = generate_design(replace(SMALL_SPEC, violation_quantile=0.55))
        loose_v = engine_for(loose).summary().violations
        tight_v = engine_for(tight).summary().violations
        assert tight_v > loose_v


class TestPessimismIngredients:
    def test_cross_cone_sharing_creates_depth_spread(self, small_design):
        """Shared gates must see GBA depths below their longest paths —
        otherwise the design has no pessimism to remove."""
        from repro.aocv.depth import compute_gba_depths
        from repro.pba.enumerate import enumerate_worst_paths
        from repro.pba.engine import PBAEngine

        engine = engine_for(small_design)
        engine.update_timing()
        depths = compute_gba_depths(small_design.netlist)
        paths = enumerate_worst_paths(engine.graph, engine.state, 5)
        PBAEngine(engine).analyze(paths)
        gaps = [
            path.depth - min(depths[g] for g in path.gates())
            for path in paths if path.gates()
        ]
        assert max(gaps) >= 2

    def test_aocv_distances_spread(self, small_design):
        """Paths must spread over the derating table's distance axis."""
        from repro.pba.enumerate import enumerate_worst_paths
        from repro.pba.engine import PBAEngine

        engine = engine_for(small_design)
        engine.update_timing()
        paths = enumerate_worst_paths(engine.graph, engine.state, 4)
        PBAEngine(engine).analyze(paths)
        distances = [p.distance for p in paths if p.gates()]
        assert max(distances) > 2 * min(d for d in distances if d > 0)
