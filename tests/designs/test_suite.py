"""D1-D10 suite tests (structure only; heavy analysis lives in benches)."""

import pytest

from repro.designs.suite import (
    DESIGN_SPECS,
    build_design,
    design_factory,
    design_names,
)


class TestSuite:
    def test_ten_designs(self):
        assert design_names() == [f"D{i}" for i in range(1, 11)]

    def test_specs_are_distinct(self):
        seeds = {spec.seed for spec in DESIGN_SPECS.values()}
        assert len(seeds) == 10

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            build_design("D99")

    def test_build_returns_fresh_copies(self):
        a = build_design("D1")
        b = build_design("D1")
        assert a.netlist is not b.netlist
        victim = a.netlist.combinational_gates()[0]
        a.netlist.remove_gate(victim)
        # b is unaffected by mutating a.
        assert victim in b.netlist.gates

    def test_factory_shape(self):
        factory = design_factory("D1")
        netlist, constraints, placement, sta_config = factory()
        assert netlist.name == "D1"
        assert constraints.primary_clock().period > 0
        assert placement.locations
        assert sta_config.derating_table is not None

    def test_d1_has_violations(self):
        from tests.conftest import engine_for

        design = build_design("D1")
        engine = engine_for(design)
        assert engine.summary().violations > 0

    def test_suite_scale_env(self, monkeypatch):
        base_flops = len(build_design("D1").netlist.sequential_gates())
        monkeypatch.setenv("REPRO_SUITE_SCALE", "0.5")
        scaled = len(build_design("D1").netlist.sequential_gates())
        assert scaled == max(4, int(0.5 * base_flops))

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_SCALE", "fast")
        with pytest.raises(ValueError):
            build_design("D1")
        monkeypatch.setenv("REPRO_SUITE_SCALE", "-1")
        with pytest.raises(ValueError):
            build_design("D1")
