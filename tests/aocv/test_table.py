"""Derating-table tests, including the paper's Table 1."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AOCVError, ParseError
from repro.aocv.table import (
    DeratingTable,
    make_derating_table,
    paper_table_1,
    parse_aocv,
    write_aocv,
)


class TestPaperTable1:
    """Exact spot checks against Table 1 of the paper."""

    def test_grid_values(self):
        t = paper_table_1()
        assert t.derate(3, 500) == 1.30
        assert t.derate(4, 500) == 1.25
        assert t.derate(5, 500) == 1.20
        assert t.derate(6, 500) == 1.15
        assert t.derate(6, 1500) == 1.25
        assert t.derate(3, 1500) == 1.35

    def test_monotonic(self):
        assert paper_table_1().validate_monotonic() == []

    def test_clamping(self):
        t = paper_table_1()
        assert t.derate(1, 0) == 1.30      # clamps to (3, 500)
        assert t.derate(100, 1e9) == 1.25  # clamps to (6, 1500)

    def test_interpolation_between_depths(self):
        t = paper_table_1()
        assert t.derate(3.5, 500) == pytest.approx((1.30 + 1.25) / 2)

    def test_interpolation_between_distances(self):
        t = paper_table_1()
        assert t.derate(3, 750) == pytest.approx((1.30 + 1.32) / 2)


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(AOCVError):
            DeratingTable(np.array([1.0, 2.0]), np.array([1.0]),
                          np.array([[1.1, 1.2], [1.0, 1.0]]))

    def test_nonpositive_rejected(self):
        with pytest.raises(AOCVError):
            DeratingTable(np.array([1.0]), np.array([1.0]),
                          np.array([[0.0]]))

    def test_decreasing_axis_rejected(self):
        with pytest.raises(AOCVError):
            DeratingTable(np.array([2.0, 1.0]), np.array([1.0]),
                          np.array([[1.1], [1.2]]).T)

    def test_monotonicity_violations_reported(self):
        t = DeratingTable(
            np.array([1.0, 2.0]), np.array([1.0, 2.0]),
            np.array([[1.1, 1.3],    # derate increases with depth: bad
                      [1.0, 1.2]]),  # derate decreases with distance: bad
        )
        assert len(t.validate_monotonic()) == 2


class TestGenerated:
    def test_generated_table_is_monotonic(self):
        assert make_derating_table().validate_monotonic() == []

    def test_sigma_controls_magnitude(self):
        small = make_derating_table(sigma=0.1)
        big = make_derating_table(sigma=0.5)
        assert big.max_derate() > small.max_derate()

    def test_all_derates_above_one(self):
        assert make_derating_table().min_derate() > 1.0


class TestIO:
    def test_round_trip(self):
        t = paper_table_1()
        parsed = parse_aocv(write_aocv(t))
        assert parsed == t

    def test_parse_with_comments(self):
        text = "# hdr\ndepth 3 4\ndistance 500\n1.3 1.2  # row\n"
        t = parse_aocv(text)
        assert t.derate(3, 500) == 1.3

    def test_missing_header(self):
        with pytest.raises(ParseError):
            parse_aocv("1.3 1.2\n")

    def test_missing_rows(self):
        with pytest.raises(ParseError):
            parse_aocv("depth 3 4\ndistance 500\n")

    def test_bad_number_located(self):
        with pytest.raises(ParseError) as err:
            parse_aocv("depth 3 4\ndistance 500\n1.3 banana\n")
        assert err.value.line == 3


@given(
    depth=st.floats(1, 100, allow_nan=False),
    distance=st.floats(0, 1e5, allow_nan=False),
)
def test_interpolation_stays_in_corner_bounds(depth, distance):
    """Bilinear interpolation can never exceed the grid extremes."""
    t = paper_table_1()
    value = t.derate(depth, distance)
    assert t.min_derate() - 1e-9 <= value <= t.max_derate() + 1e-9


@given(
    d1=st.floats(1, 100, allow_nan=False),
    d2=st.floats(1, 100, allow_nan=False),
    distance=st.floats(0, 1e5, allow_nan=False),
)
def test_derate_nonincreasing_in_depth(d1, d2, distance):
    """Deeper paths can only look less derated (variation cancels)."""
    t = paper_table_1()
    lo, hi = sorted((d1, d2))
    assert t.derate(hi, distance) <= t.derate(lo, distance) + 1e-9


@given(
    depth=st.floats(1, 100, allow_nan=False),
    x1=st.floats(0, 1e5, allow_nan=False),
    x2=st.floats(0, 1e5, allow_nan=False),
)
def test_derate_nondecreasing_in_distance(depth, x1, x2):
    """Farther-apart endpoints can only look more derated."""
    t = paper_table_1()
    lo, hi = sorted((x1, x2))
    assert t.derate(depth, lo) <= t.derate(depth, hi) + 1e-9
