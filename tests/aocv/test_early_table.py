"""Hold-side (early) AOCV derating tests."""

from dataclasses import replace

import pytest

from repro.aocv.table import make_derating_table, make_early_derating_table
from repro.timing.sta import STAEngine
from tests.conftest import engine_for


class TestEarlyTable:
    def test_monotone_in_early_sense(self):
        table = make_early_derating_table()
        assert table.validate_monotonic(early=True) == []

    def test_late_sense_flags_it(self):
        table = make_early_derating_table()
        assert table.validate_monotonic(early=False) != []

    def test_factors_below_one(self):
        table = make_early_derating_table()
        assert table.max_derate() < 1.0
        assert table.min_derate() > 0.0

    def test_approaches_one_with_depth(self):
        table = make_early_derating_table()
        assert table.derate(64, 500) > table.derate(1, 500)

    def test_shrinks_with_distance(self):
        table = make_early_derating_table()
        assert table.derate(4, 32000) < table.derate(4, 500)

    def test_mirror_of_late_table(self):
        late = make_derating_table(sigma=0.3)
        early = make_early_derating_table(sigma=0.3)
        # Symmetric 3-sigma window around 1 at the same corner.
        assert late.derate(1, 500) - 1.0 == pytest.approx(
            1.0 - early.derate(1, 500), rel=0.15
        )


class TestEngineIntegration:
    def test_early_table_tightens_hold(self, small_design):
        """AOCV early derates (< flat 0.90 at shallow depths) shrink
        early arrivals, so hold slacks can only get worse or equal."""
        flat_engine = engine_for(small_design)
        flat_holds = {s.name: s.slack for s in flat_engine.hold_slacks()}

        early = make_early_derating_table(sigma=0.35)
        config = replace(
            small_design.sta_config, early_derating_table=early,
            data_early_derate=1.0,  # isolate the table's effect
        )
        aocv_engine = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, config,
        )
        aocv_holds = {s.name: s.slack for s in aocv_engine.hold_slacks()}
        # Compare against underated early (factor 1.0): AOCV early must
        # be strictly more conservative on at least some endpoints.
        no_derate = replace(
            small_design.sta_config, data_early_derate=1.0,
        )
        plain = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, no_derate,
        )
        plain_holds = {s.name: s.slack for s in plain.hold_slacks()}
        tightened = 0
        for name in plain_holds:
            assert aocv_holds[name] <= plain_holds[name] + 1e-9
            if aocv_holds[name] < plain_holds[name] - 1e-9:
                tightened += 1
        assert tightened > 0
        del flat_holds  # flat comparison is informational only

    def test_setup_unaffected_by_early_table(self, small_design):
        base = engine_for(small_design)
        config = replace(
            small_design.sta_config,
            early_derating_table=make_early_derating_table(),
        )
        with_early = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, config,
        )
        want = {s.name: s.slack for s in base.setup_slacks()}
        got = {s.name: s.slack for s in with_early.setup_slacks()}
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-9)
