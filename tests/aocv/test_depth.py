"""GBA worst-depth computation tests — the heart of the pessimism gap."""

import pytest

from repro.errors import TimingError
from repro.liberty.builder import make_unit_delay_library
from repro.netlist.core import Netlist, PortDirection
from repro.aocv.depth import (
    backward_min_depths,
    compute_gba_depths,
    forward_min_depths,
)
from repro.designs.paper_example import EXPECTED_GBA_DEPTHS, build_fig2_design

LIB = make_unit_delay_library()


def _chain(length: int) -> Netlist:
    """in -> inv x length -> out."""
    n = Netlist("chain", LIB)
    n.add_port("a", PortDirection.INPUT)
    n.add_port("y", PortDirection.OUTPUT)
    prev = "a"
    for i in range(length):
        out = "y" if i == length - 1 else f"w{i}"
        n.add_gate(f"u{i}", "INV_U", {"A": prev, "Z": out})
        prev = out
    return n


class TestChain:
    def test_forward_depths_count_position(self):
        fwd = forward_min_depths(_chain(4))
        assert fwd == {"u0": 1, "u1": 2, "u2": 3, "u3": 4}

    def test_backward_depths_count_remaining(self):
        bwd = backward_min_depths(_chain(4))
        assert bwd == {"u0": 4, "u1": 3, "u2": 2, "u3": 1}

    def test_gba_depth_is_chain_length_everywhere(self):
        depths = compute_gba_depths(_chain(5))
        assert all(d == 5 for d in depths.values())


class TestBranching:
    def test_short_branch_pulls_depth_down(self):
        """A gate on both a long and a short path gets the short depth."""
        n = _chain(4)
        # u1 also drives an output port directly: a 2-gate path u0-u1.
        n.add_port("tap", PortDirection.OUTPUT)
        n.add_gate("tapg", "INV_U", {"A": "w1", "Z": "tap"})
        depths = compute_gba_depths(n)
        # u0,u1 now lie on the 3-gate path u0-u1-tapg.
        assert depths["u0"] == 3
        assert depths["u1"] == 3
        # Gates after the branch point are unaffected.
        assert depths["u2"] == 4
        assert depths["u3"] == 4

    def test_flop_boundary_restarts_depth(self):
        n = Netlist("ff", LIB)
        n.add_port("clk", PortDirection.INPUT)
        n.add_port("a", PortDirection.INPUT)
        n.add_port("y", PortDirection.OUTPUT)
        n.add_gate("u0", "INV_U", {"A": "a", "Z": "w0"})
        n.add_gate("ff", "DFF_U", {"D": "w0", "CK": "clk", "Q": "q"})
        n.add_gate("u1", "INV_U", {"A": "q", "Z": "y"})
        depths = compute_gba_depths(n)
        assert depths["u0"] == 1
        assert depths["u1"] == 1

    def test_dangling_gate_counts_itself(self):
        n = Netlist("dangle", LIB)
        n.add_gate("solo", "INV_U", {})
        assert compute_gba_depths(n) == {"solo": 1}


class TestPaperExample:
    def test_fig2_depths_match_paper(self):
        design = build_fig2_design()
        assert compute_gba_depths(design.netlist) == EXPECTED_GBA_DEPTHS


class TestInvariant:
    def test_gba_depth_bounds_every_path_depth(self, small_engine):
        """For every enumerated path, every gate's GBA depth <= path depth.

        This is THE inequality that makes GBA pessimistic (Fig. 2): it
        must hold for arbitrary generated designs.
        """
        from repro.pba.enumerate import enumerate_worst_paths
        from repro.pba.engine import PBAEngine

        engine = small_engine
        depths = compute_gba_depths(engine.netlist)
        paths = enumerate_worst_paths(engine.graph, engine.state, 8)
        PBAEngine(engine).analyze(paths)
        assert paths
        for path in paths:
            for gate in path.gates():
                assert depths[gate] <= path.depth, (
                    f"{gate}: gba depth {depths[gate]} > "
                    f"path depth {path.depth}"
                )

    def test_loop_raises(self):
        n = Netlist("loop", LIB)
        n.add_gate("u1", "INV_U", {"A": "w2", "Z": "w1"})
        n.add_gate("u2", "INV_U", {"A": "w1", "Z": "w2"})
        with pytest.raises(TimingError):
            compute_gba_depths(n)
