"""QoR metric tests."""

import pytest

from repro.opt.qor import QoRMetrics


class TestMeasure:
    def test_matches_engine_and_netlist(self, small_engine):
        qor = QoRMetrics.measure(small_engine)
        summary = small_engine.summary()
        assert qor.wns == summary.wns
        assert qor.tns == summary.tns
        assert qor.violations == summary.violations
        assert qor.area == pytest.approx(small_engine.netlist.total_area())
        assert qor.leakage == pytest.approx(
            small_engine.netlist.total_leakage()
        )
        assert qor.buffers == small_engine.netlist.buffer_count()


class TestImprovement:
    def test_smaller_is_better_for_cost_metrics(self):
        ours = QoRMetrics(wns=-10, tns=-20, area=90, leakage=80,
                          buffers=9, violations=1)
        base = QoRMetrics(wns=-10, tns=-20, area=100, leakage=100,
                          buffers=10, violations=1)
        gains = ours.improvement_over(base)
        assert gains["area"] == pytest.approx(10.0)
        assert gains["leakage"] == pytest.approx(20.0)
        assert gains["buffer"] == pytest.approx(10.0)

    def test_less_negative_slack_is_positive_gain(self):
        ours = QoRMetrics(wns=-5, tns=-10, area=1, leakage=1,
                          buffers=0, violations=1)
        base = QoRMetrics(wns=-10, tns=-20, area=1, leakage=1,
                          buffers=0, violations=2)
        gains = ours.improvement_over(base)
        assert gains["wns"] == pytest.approx(50.0)
        assert gains["tns"] == pytest.approx(50.0)

    def test_degradation_is_negative(self):
        ours = QoRMetrics(wns=-12, tns=-20, area=110, leakage=100,
                          buffers=10, violations=2)
        base = QoRMetrics(wns=-10, tns=-20, area=100, leakage=100,
                          buffers=10, violations=2)
        gains = ours.improvement_over(base)
        assert gains["wns"] < 0
        assert gains["area"] < 0

    def test_clean_baseline_guards_division(self):
        ours = QoRMetrics(wns=5, tns=0, area=100, leakage=100,
                          buffers=0, violations=0)
        base = QoRMetrics(wns=0, tns=0, area=100, leakage=100,
                          buffers=0, violations=0)
        gains = ours.improvement_over(base)
        assert gains["wns"] == 0.0 and gains["tns"] == 0.0
        assert gains["buffer"] == 0.0
