"""Transform-engine tests: apply, measure, revert — exactly."""

import pytest

from repro.opt.transforms import TransformEngine
from tests.conftest import SMALL_SPEC, engine_for
from repro.designs.generator import generate_design


@pytest.fixture()
def setup():
    design = generate_design(SMALL_SPEC)
    engine = engine_for(design)
    engine.update_timing()
    return design, engine, TransformEngine(engine)


def _slacks(engine):
    return {s.name: s.slack for s in engine.setup_slacks()}


def _data_gate(design, engine, transforms):
    return next(
        g for g in design.netlist.combinational_gates()
        if transforms.is_touchable(g)
    )


class TestTouchability:
    def test_clock_buffers_untouchable(self, setup):
        design, _, transforms = setup
        clock_gates = [
            g for g in design.netlist.gates if g.startswith("ckbuf")
        ]
        assert clock_gates
        for gate in clock_gates:
            assert not transforms.is_touchable(gate)

    def test_flops_untouchable(self, setup):
        design, _, transforms = setup
        for flop in design.netlist.sequential_gates():
            assert not transforms.is_touchable(flop)

    def test_data_gates_touchable(self, setup):
        design, engine, transforms = setup
        assert _data_gate(design, engine, transforms)


class TestUpsizeDownsize:
    def test_upsize_and_revert_restores_slacks(self, setup):
        design, engine, transforms = setup
        baseline = _slacks(engine)
        gate = _data_gate(design, engine, transforms)
        move = transforms.upsize(gate)
        assert move is not None
        changed = _slacks(engine)
        assert changed != pytest.approx(baseline)
        move.revert(engine)
        restored = _slacks(engine)
        for name, value in baseline.items():
            assert restored[name] == pytest.approx(value, abs=1e-9)

    def test_upsize_clock_gate_refused(self, setup):
        design, _, transforms = setup
        clock_gate = next(
            g for g in design.netlist.gates if g.startswith("ckbuf")
        )
        assert transforms.upsize(clock_gate) is None

    def test_downsize_reduces_area(self, setup):
        design, engine, transforms = setup
        # Find a gate not already at minimum size.
        gate = next(
            g for g in design.netlist.combinational_gates()
            if transforms.is_touchable(g)
            and design.netlist.library.next_size_down(
                design.netlist.gate(g).cell_name
            ) is not None
        )
        before = design.netlist.total_area()
        move = transforms.downsize(gate)
        assert move is not None
        assert design.netlist.total_area() < before


class TestBufferNet:
    def _heavy_net(self, design):
        for net in design.netlist.nets:
            loads = [
                r for r in design.netlist.net_loads(net) if not r.is_port
            ]
            driver = design.netlist.net_driver(net)
            if (
                len(loads) >= 3 and driver is not None
                and driver.gate is not None
                and not driver.gate.startswith("ckbuf")
                and not design.netlist.cell_of(driver.gate).is_sequential
            ):
                return net
        return None

    def test_buffer_and_revert_restores(self, setup):
        design, engine, transforms = setup
        net = self._heavy_net(design)
        if net is None:
            pytest.skip("no bufferable net in this design")
        baseline = _slacks(engine)
        gates_before = set(design.netlist.gates)
        move = transforms.buffer_net(net)
        assert move is not None
        assert len(design.netlist.gates) == len(gates_before) + 1
        move.revert(engine)
        assert set(design.netlist.gates) == gates_before
        restored = _slacks(engine)
        for name, value in baseline.items():
            assert restored[name] == pytest.approx(value, abs=1e-9)

    def test_keeps_most_critical_load_on_net(self, setup):
        design, engine, transforms = setup
        net = self._heavy_net(design)
        if net is None:
            pytest.skip("no bufferable net in this design")
        loads_before = [
            r for r in design.netlist.net_loads(net) if not r.is_port
        ]
        arrivals = {
            r: float(engine.state.arrival_late[engine.graph.node_of[r]])
            for r in loads_before
        }
        critical = max(arrivals, key=arrivals.get)
        move = transforms.buffer_net(net)
        assert move is not None
        assert critical in design.netlist.net_loads(net)

    def test_two_load_net_refused(self, setup):
        design, engine, transforms = setup
        single = next(
            net for net in design.netlist.nets
            if len([
                r for r in design.netlist.net_loads(net) if not r.is_port
            ]) == 1
            and design.netlist.net_driver(net) is not None
        )
        assert transforms.buffer_net(single) is None
