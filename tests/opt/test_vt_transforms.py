"""VT-swap transform tests."""

import pytest

from repro.netlist.edit import swap_vt
from repro.opt.transforms import TransformEngine
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC, engine_for


@pytest.fixture()
def setup():
    design = generate_design(SMALL_SPEC)
    engine = engine_for(design)
    engine.update_timing()
    return design, engine, TransformEngine(engine)


def _data_gate(design, transforms):
    return next(
        g for g in design.netlist.combinational_gates()
        if transforms.is_touchable(g)
    )


class TestEditLevel:
    def test_swap_and_back(self, setup):
        design, _, transforms = setup
        gate = _data_gate(design, transforms)
        original = design.netlist.gate(gate).cell_name
        change = swap_vt(design.netlist, gate, "lvt")
        assert change is not None and change.kind == "vt_swap"
        assert design.netlist.cell_of(gate).vt == "lvt"
        swap_vt(design.netlist, gate, "svt")
        assert design.netlist.gate(gate).cell_name == original

    def test_noop_when_already_there(self, setup):
        design, _, transforms = setup
        gate = _data_gate(design, transforms)
        assert swap_vt(design.netlist, gate, "svt") is None

    def test_missing_flavour(self, setup):
        design, _, _ = setup
        buffer_gate = next(
            g for g in design.netlist.gates
            if design.netlist.cell_of(g).is_buffer
        )
        assert swap_vt(design.netlist, buffer_gate, "lvt") is None


class TestTransformLevel:
    def test_lvt_improves_endpoint_timing(self, setup):
        design, engine, transforms = setup
        worst = engine.violating_endpoints()[0]
        wns_before = engine.summary().wns
        # Swap every touchable gate on the worst path to LVT.
        from repro.timing.report import trace_worst_path

        edges = trace_worst_path(engine.graph, engine.state, worst.node)
        swapped = 0
        for edge_id in edges:
            gate = engine.graph.edge(edge_id).gate
            if gate and transforms.is_touchable(gate):
                if transforms.swap_to_vt(gate, "lvt") is not None:
                    swapped += 1
        assert swapped > 0
        assert engine.summary().wns > wns_before

    def test_hvt_cuts_leakage_preserving_area(self, setup):
        design, engine, transforms = setup
        gate = _data_gate(design, transforms)
        area = design.netlist.total_area()
        leakage = design.netlist.total_leakage()
        move = transforms.swap_to_vt(gate, "hvt")
        assert move is not None
        assert design.netlist.total_leakage() < leakage
        assert design.netlist.total_area() == pytest.approx(area)

    def test_revert_is_exact(self, setup):
        design, engine, transforms = setup
        gate = _data_gate(design, transforms)
        baseline = {s.name: s.slack for s in engine.setup_slacks()}
        move = transforms.swap_to_vt(gate, "lvt")
        move.revert(engine)
        restored = {s.name: s.slack for s in engine.setup_slacks()}
        for name, value in baseline.items():
            assert restored[name] == pytest.approx(value, abs=1e-9)

    def test_incremental_matches_full_after_swap(self, setup):
        design, engine, transforms = setup
        gate = _data_gate(design, transforms)
        transforms.swap_to_vt(gate, "hvt")
        reference = engine_for(design)
        got = {s.name: s.slack for s in engine.setup_slacks()}
        want = {s.name: s.slack for s in reference.setup_slacks()}
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-6)
