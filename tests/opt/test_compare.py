"""Flow-comparison (Table 2/5 harness) tests."""

import pytest

from repro.opt.closure import ClosureConfig
from repro.opt.compare import run_flow_comparison, signoff_qor
from repro.designs.generator import DesignSpec, generate_design
from tests.conftest import engine_for

SPEC = DesignSpec(
    "cmp", seed=31, n_flops=12, n_inputs=4, n_outputs=3,
    depth_range=(3, 8), violation_quantile=0.75,
)


def _factory():
    design = generate_design(SPEC)
    return (design.netlist, design.constraints, design.placement,
            design.sta_config)


@pytest.fixture(scope="module")
def comparison():
    return run_flow_comparison(
        "cmp", _factory, ClosureConfig(max_transforms=80)
    )


class TestSignoff:
    def test_signoff_never_worse_than_gba_view(self):
        design = generate_design(SPEC)
        engine = engine_for(design)
        gba = engine.summary()
        golden = signoff_qor(engine)
        assert golden.wns >= gba.wns - 1e-9
        assert golden.violations <= gba.violations

    def test_signoff_clears_weights(self):
        design = generate_design(SPEC)
        engine = engine_for(design)
        engine.set_gate_weights({"g_0_0_0": 0.9})
        signoff_qor(engine)
        assert engine.weights == {}


class TestComparison:
    def test_both_flows_ran(self, comparison):
        assert comparison.gba.transforms_tried > 0
        assert comparison.mgba.mgba_result is not None

    def test_table2_shape_cheaper_design(self, comparison):
        """mGBA flow must not cost more area/leakage than GBA flow."""
        gains = comparison.qor_improvement()
        assert gains["area"] >= -1.0     # allow tiny noise, expect >= 0
        assert gains["leakage"] >= -1.0

    def test_signoff_quality_preserved(self, comparison):
        """The cheaper mGBA design may not be meaningfully worse at
        sign-off (paper: some WNS/TNS degradation is acceptable, but
        violations must stay bounded)."""
        assert comparison.mgba_signoff.violations <= max(
            comparison.gba_signoff.violations, 5
        )

    def test_runtime_row_fields(self, comparison):
        row = comparison.runtime_row()
        assert set(row) == {
            "gba_flow", "post_route", "mgba", "total", "speedup",
            "fix_speedup",
        }
        assert row["total"] == pytest.approx(
            comparison.mgba.seconds_total
        )
        assert row["speedup"] > 0
