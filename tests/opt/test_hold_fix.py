"""Hold-violation fixing tests."""

import pytest

from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.opt.transforms import TransformEngine
from repro.timing.slack import CheckKind
from repro.designs.generator import generate_design
from tests.conftest import engine_for


from repro.designs.generator import DesignSpec

#: Shallow cones race the clock skew: guaranteed hold violations.
HOLD_SPEC = DesignSpec(
    "holdy", seed=77, n_flops=24, n_inputs=4, n_outputs=3,
    depth_range=(1, 5), violation_quantile=0.9,
)


def _design_with_hold_violations():
    design = generate_design(HOLD_SPEC)
    engine = engine_for(design)
    engine.update_timing()
    holds = [s for s in engine.hold_slacks() if s.slack < 0]
    assert holds, "HOLD_SPEC must produce hold violations"
    return design, engine


class TestPadTransform:
    def test_pad_improves_hold(self):
        design, engine = _design_with_hold_violations()
        transforms = TransformEngine(engine)
        worst = min(engine.hold_slacks(), key=lambda s: s.slack)
        ref = engine.graph.node(worst.node).ref
        move = transforms.pad_hold_path(ref)
        assert move is not None
        after = next(
            s for s in engine.hold_slacks() if s.name == worst.name
        )
        assert after.slack > worst.slack

    def test_pad_reverts_exactly(self):
        design, engine = _design_with_hold_violations()
        transforms = TransformEngine(engine)
        baseline = {s.name: s.slack for s in engine.hold_slacks()}
        worst = min(engine.hold_slacks(), key=lambda s: s.slack)
        move = transforms.pad_hold_path(engine.graph.node(worst.node).ref)
        move.revert(engine)
        restored = {s.name: s.slack for s in engine.hold_slacks()}
        for name, value in baseline.items():
            assert restored[name] == pytest.approx(value, abs=1e-9)

    def test_pad_only_moves_one_load(self):
        design, engine = _design_with_hold_violations()
        transforms = TransformEngine(engine)
        worst = min(engine.hold_slacks(), key=lambda s: s.slack)
        ref = engine.graph.node(worst.node).ref
        net = design.netlist.gate(ref.gate).connections[ref.pin]
        other_loads_before = [
            r for r in design.netlist.net_loads(net) if r != ref
        ]
        transforms.pad_hold_path(ref)
        for load in other_loads_before:
            # Everyone else still hangs on the original net's successor
            # structure — i.e. they were not rerouted.
            assert design.netlist.pin_net(load) is not None

    def test_port_endpoint_refused(self, small_engine):
        from repro.netlist.core import PinRef

        transforms = TransformEngine(small_engine)
        assert transforms.pad_hold_path(PinRef(None, "out0")) is None


class TestHoldPhase:
    def test_closure_with_hold_fixing(self):
        design = generate_design(HOLD_SPEC)
        optimizer = TimingClosureOptimizer(
            design.netlist, design.constraints, design.placement,
            design.sta_config,
            ClosureConfig(max_transforms=80, fix_hold=True,
                          recovery=False),
        )
        engine = optimizer.engine
        engine.update_timing()
        hold_before = engine.summary(CheckKind.HOLD)
        optimizer.run()
        hold_after = engine.summary(CheckKind.HOLD)
        setup_after = engine.summary(CheckKind.SETUP)
        assert hold_after.violations <= hold_before.violations
        # Hold fixing must not have broken setup closure.
        assert setup_after.violations <= hold_before.endpoints

    def test_hold_phase_counts_in_report(self):
        design = generate_design(HOLD_SPEC)
        optimizer = TimingClosureOptimizer(
            design.netlist, design.constraints, design.placement,
            design.sta_config,
            ClosureConfig(max_transforms=80, fix_hold=True,
                          recovery=False),
        )
        report = optimizer.run()
        assert report.fix_tried >= report.fix_applied
