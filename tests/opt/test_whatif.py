"""What-if evaluation tests: parallel == sequential, always reverted.

The module's contract has three legs, each gated here:

* **worker transparency** — ``evaluate_what_if`` returns bit-identical
  frozen results whether candidates run serially on one engine or
  chunked across thread/process workers on private clones;
* **clean revert** — every apply/measure/revert cycle leaves the
  engine (netlist content *and* timing state) exactly where it
  started, property-tested with hypothesis-random resize edit lists
  and checked against a from-scratch full update;
* **deterministic min-period** — the bisection's bracket/tolerance
  contract is a pure function of content, not of evaluation order.
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.context import RunContext
from repro.designs.generator import generate_design
from repro.netlist.verilog import write_verilog
from repro.opt.whatif import (
    WhatIfError,
    evaluate_candidate_on_engine,
    evaluate_what_if,
    min_period_on_engine,
    normalize_candidate,
    parse_eco_candidate,
    _snapshot,
)
from tests.conftest import SMALL_SPEC, engine_for

#: Hypothesis edit scripts: (gate index, direction) resize lists, the
#: same shape tests/service/test_invalidation.py drives.
EDIT_LISTS = st.lists(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
        min_size=1, max_size=3,
    ),
    min_size=1, max_size=4,
)


def resize_specs(netlist, script):
    """(index, up) pairs -> concrete resize specs on real gates."""
    gates = netlist.combinational_gates()
    return [
        {"kind": "resize", "gate": gates[index % len(gates)], "up": up}
        for index, up in script
    ]


def small_candidates(netlist):
    """A deterministic mixed candidate list on the small design."""
    gates = netlist.combinational_gates()
    nets = [
        n for n in netlist.nets
        if netlist.net_driver(n) is not None
        and netlist.net_loads(n)
        and not any(r.is_port for r in netlist.net_loads(n))
    ]
    return [
        [{"kind": "resize", "gate": gates[0], "up": True}],
        [{"kind": "resize", "gate": gates[1], "up": False}],
        [
            {"kind": "resize", "gate": gates[2], "up": True},
            {"kind": "resize", "gate": gates[3], "up": True},
        ],
        [{"kind": "insert_buffer", "net": nets[0],
          "buffer_cell": "BUF_X2"}],
        [{"kind": "vt_swap", "gate": gates[0], "vt": "lvt"}],
    ]


class TestNormalize:
    def test_spec_list_and_eco_text_coincide(self):
        specs = [{"kind": "size_cell", "gate": "u1", "cell": "NAND2_X4"}]
        text = "size_cell u1 NAND2_X4\n# comment\n"
        assert normalize_candidate(specs) == normalize_candidate(text)

    def test_bare_spec_is_wrapped(self):
        spec = {"kind": "remove_buffer", "gate": "b1"}
        assert normalize_candidate(spec) == normalize_candidate([spec])

    def test_frozen_pairs_round_trip(self):
        canonical = normalize_candidate(
            [{"kind": "resize", "gate": "u1", "up": 1}]
        )
        assert normalize_candidate(list(canonical)) == canonical
        assert canonical[0] == (("gate", "u1"), ("kind", "resize"),
                                ("up", True))

    def test_unknown_kind_rejected(self):
        with pytest.raises(WhatIfError, match="unknown edit kind"):
            normalize_candidate([{"kind": "teleport", "gate": "u1"}])

    def test_missing_field_rejected(self):
        with pytest.raises(WhatIfError, match="missing"):
            normalize_candidate([{"kind": "resize", "up": True}])

    def test_unknown_field_rejected(self):
        with pytest.raises(WhatIfError, match="unknown fields"):
            normalize_candidate(
                [{"kind": "resize", "gate": "u1", "up": True, "x": 1}]
            )

    def test_empty_candidate_rejected(self):
        with pytest.raises(WhatIfError, match="no edits"):
            normalize_candidate([])

    def test_bad_eco_line_reports_lineno(self):
        with pytest.raises(WhatIfError, match="ECO line 2"):
            parse_eco_candidate("size_cell u1 NAND2_X4\nwibble u1\n")


class TestParallelEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial(self, fresh_small_design, backend):
        candidates = small_candidates(fresh_small_design.netlist)
        serial = evaluate_what_if(
            generate_design(SMALL_SPEC), candidates,
            RunContext(workers=1, backend="serial"),
        )
        parallel = evaluate_what_if(
            generate_design(SMALL_SPEC), candidates,
            RunContext(workers=3, backend=backend),
        )
        assert serial == parallel
        assert any(c.ok for c in serial.candidates)

    def test_duplicates_evaluate_once_but_report_per_position(
        self, fresh_small_design
    ):
        gates = fresh_small_design.netlist.combinational_gates()
        candidate = [{"kind": "resize", "gate": gates[0], "up": True}]
        result = evaluate_what_if(
            fresh_small_design, [candidate, candidate],
            RunContext(workers=1, backend="serial"),
        )
        assert len(result.candidates) == 2
        assert result.candidates[0] == result.candidates[1]

    def test_eco_text_equals_spec_list(self, fresh_small_design):
        gates = fresh_small_design.netlist.combinational_gates()
        specs = evaluate_what_if(
            fresh_small_design,
            [[{"kind": "resize", "gate": gates[0], "up": True}]],
            RunContext(workers=1, backend="serial"),
        )
        assert specs.candidates[0].ok
        text = "\n".join(specs.candidates[0].eco)
        replay = evaluate_what_if(
            generate_design(SMALL_SPEC), [text],
            RunContext(workers=1, backend="serial"),
        )
        assert replay.candidates[0] == specs.candidates[0]


class TestSequentialBitIdentity:
    """Each candidate == a fresh-engine apply -> full update, reverted."""

    def test_candidates_match_fresh_engine_full_update(
        self, fresh_small_design
    ):
        candidates = small_candidates(fresh_small_design.netlist)
        result = evaluate_what_if(
            fresh_small_design, candidates,
            RunContext(workers=1, backend="serial"),
        )
        for candidate, scored in zip(candidates, result.candidates):
            if not scored.ok:
                continue
            twin = generate_design(SMALL_SPEC)
            engine = engine_for(twin)
            engine.update_timing()
            base = _snapshot(engine)
            probe = evaluate_candidate_on_engine(
                engine, normalize_candidate(candidate), base
            )
            assert probe == scored

    def test_engine_restored_after_each_candidate(self, fresh_small_design):
        engine = engine_for(fresh_small_design)
        engine.update_timing()
        verilog_before = write_verilog(engine.netlist)
        base = _snapshot(engine)
        for candidate in small_candidates(engine.netlist):
            evaluate_candidate_on_engine(
                engine, normalize_candidate(candidate), base
            )
            assert write_verilog(engine.netlist) == verilog_before
            assert _snapshot(engine) == base

    def test_incremental_revert_matches_full_update(self, fresh_small_design):
        engine = engine_for(fresh_small_design)
        engine.update_timing()
        base = _snapshot(engine)
        for candidate in small_candidates(engine.netlist):
            evaluate_candidate_on_engine(
                engine, normalize_candidate(candidate), base
            )
        engine.update_timing()  # full recompute over the reverted content
        assert _snapshot(engine) == base

    def test_failed_candidate_reverts_applied_prefix(
        self, fresh_small_design
    ):
        engine = engine_for(fresh_small_design)
        engine.update_timing()
        base = _snapshot(engine)
        gates = engine.netlist.combinational_gates()
        result = evaluate_candidate_on_engine(
            engine,
            normalize_candidate([
                {"kind": "resize", "gate": gates[0], "up": True},
                {"kind": "remove_buffer", "gate": gates[0]},  # not a buffer
            ]),
            base,
        )
        assert not result.ok
        assert result.applied == 1  # the prefix was applied, then undone
        assert result.eco == () and result.touched == ()
        assert _snapshot(engine) == base

    def test_remove_buffer_round_trip(self, fresh_small_design):
        engine = engine_for(fresh_small_design)
        engine.update_timing()
        nets = [
            n for n in engine.netlist.nets
            if engine.netlist.net_driver(n) is not None
            and engine.netlist.net_loads(n)
            and not any(
                r.is_port for r in engine.netlist.net_loads(n)
            )
        ]
        base = _snapshot(engine)
        combo = normalize_candidate([
            {"kind": "insert_buffer", "net": nets[0],
             "buffer_cell": "BUF_X2", "buffer": "tbuf", "new_net": "tnet"},
        ])
        result = evaluate_candidate_on_engine(engine, combo, base)
        assert result.ok
        assert _snapshot(engine) == base
        # Now exercise remove_buffer as a first-class spec.
        from repro.netlist.edit import insert_buffer

        change = insert_buffer(
            engine.netlist, nets[0], "BUF_X2",
            placement=engine.placement,
            buffer_name="tbuf", new_net_name="tnet",
        )
        engine.apply_change(change)
        buffered = _snapshot(engine)
        verilog_buffered = write_verilog(engine.netlist)
        removal = evaluate_candidate_on_engine(
            engine,
            normalize_candidate([{"kind": "remove_buffer", "gate": "tbuf"}]),
            buffered,
        )
        assert removal.ok
        assert removal.wns_after == base.wns
        assert write_verilog(engine.netlist) == verilog_buffered
        assert _snapshot(engine) == buffered


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scripts=EDIT_LISTS)
def test_random_resize_lists_parallel_equals_sequential(scripts):
    """Hypothesis leg: arbitrary resize edit lists stay worker-transparent.

    Each drawn script becomes one candidate; serial evaluation on one
    engine must equal a thread fan-out on clones, and the serial engine
    must come back to its exact baseline (checked via a full update).
    """
    design = generate_design(SMALL_SPEC)
    candidates = [
        resize_specs(design.netlist, script) for script in scripts
    ]
    serial_engine = engine_for(design)
    serial_engine.update_timing()
    base = _snapshot(serial_engine)
    serial = evaluate_what_if(
        design, candidates,
        RunContext(workers=1, backend="serial"), engine=serial_engine,
    )
    parallel = evaluate_what_if(
        generate_design(SMALL_SPEC), candidates,
        RunContext(workers=3, backend="thread"),
    )
    assert serial == parallel
    serial_engine.update_timing()
    assert _snapshot(serial_engine) == base


class TestMinPeriod:
    def test_bracket_contract(self, fresh_small_design):
        engine = engine_for(fresh_small_design)
        result = min_period_on_engine(engine, tolerance=1.0)
        assert result.wns_at_period >= 0.0
        assert result.bracket_high == result.period
        assert result.bracket_high - result.bracket_low <= 1.0 + 1e-9
        assert result.evaluations >= result.iterations

    def test_deterministic_across_engines(self, fresh_small_design):
        a = min_period_on_engine(engine_for(fresh_small_design))
        b = min_period_on_engine(engine_for(generate_design(SMALL_SPEC)))
        assert a == b

    def test_search_restores_clock_and_timing(self, fresh_small_design):
        engine = engine_for(fresh_small_design)
        engine.update_timing()
        clock = engine.constraints.primary_clock()
        period_before = clock.period
        base = _snapshot(engine)
        min_period_on_engine(engine)
        assert clock.period == period_before
        assert _snapshot(engine) == base

    def test_tighter_tolerance_never_worse(self, fresh_small_design):
        coarse = min_period_on_engine(
            engine_for(fresh_small_design), tolerance=8.0
        )
        fine = min_period_on_engine(
            engine_for(generate_design(SMALL_SPEC)), tolerance=0.5
        )
        assert fine.period <= coarse.period + 1e-9
        assert fine.bracket_high - fine.bracket_low <= 0.5 + 1e-9

    def test_unknown_clock_rejected(self, fresh_small_design):
        with pytest.raises(Exception):
            min_period_on_engine(
                engine_for(fresh_small_design), clock="no_such_clock"
            )
