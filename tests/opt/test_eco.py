"""ECO export/replay tests — the round trip is the contract."""

import pytest

from repro.errors import ParseError
from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.opt.eco import apply_eco, write_eco
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC, engine_for


def _run_closure():
    design = generate_design(SMALL_SPEC)
    optimizer = TimingClosureOptimizer(
        design.netlist, design.constraints, design.placement,
        design.sta_config, ClosureConfig(max_transforms=80),
    )
    report = optimizer.run()
    return design, report


class TestRoundTrip:
    def test_replay_reproduces_optimized_netlist(self):
        """The flagship guarantee: ECO(original) == optimized."""
        optimized, report = _run_closure()
        assert report.eco_commands, "closure should accept some moves"
        pristine = generate_design(SMALL_SPEC)
        text = write_eco(report.eco_commands, pristine.netlist.name)
        applied = apply_eco(
            pristine.netlist, text, placement=pristine.placement
        )
        assert applied == len(report.eco_commands)
        assert set(pristine.netlist.gates) == set(optimized.netlist.gates)
        for name, gate in optimized.netlist.gates.items():
            replayed = pristine.netlist.gate(name)
            assert replayed.cell_name == gate.cell_name, name
            assert replayed.connections == gate.connections, name

    def test_replayed_netlist_times_identically(self):
        optimized, report = _run_closure()
        pristine = generate_design(SMALL_SPEC)
        apply_eco(
            pristine.netlist,
            write_eco(report.eco_commands),
            placement=pristine.placement,
        )
        want = engine_for(optimized)
        got = engine_for(pristine)
        want_slacks = {s.name: s.slack for s in want.setup_slacks()}
        got_slacks = {s.name: s.slack for s in got.setup_slacks()}
        for name, value in want_slacks.items():
            assert got_slacks[name] == pytest.approx(value, abs=1e-6)

    def test_eco_counts_match_accepted_moves(self):
        _, report = _run_closure()
        assert len(report.eco_commands) == report.transforms_applied


class TestScriptFormat:
    def test_header_and_comments(self):
        text = write_eco(["size_cell g NAND2_X2"], "top")
        assert text.startswith("# repro ECO for top")
        design = generate_design(SMALL_SPEC)
        # Comments and blanks are skipped on replay.
        commented = "# note\n\n" + "\n".join(text.splitlines()[2:])
        gate = design.netlist.combinational_gates()[0]
        safe = f"size_cell {gate} {design.netlist.gate(gate).cell_name}"
        apply_eco(design.netlist, f"# only comments\n\n{safe}\n")

    def test_unknown_command_rejected(self):
        design = generate_design(SMALL_SPEC)
        with pytest.raises(ParseError):
            apply_eco(design.netlist, "explode_cell g1\n")

    def test_bad_arity_rejected(self):
        design = generate_design(SMALL_SPEC)
        with pytest.raises(ParseError):
            apply_eco(design.netlist, "size_cell only_one_arg\n")

    def test_replay_error_carries_line(self):
        design = generate_design(SMALL_SPEC)
        with pytest.raises(ParseError) as err:
            apply_eco(design.netlist, "\nsize_cell ghost INV_X2\n")
        assert err.value.line == 2
