"""Closure-loop tests."""


from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC


def _optimizer(config=None, spec=SMALL_SPEC):
    design = generate_design(spec)
    return TimingClosureOptimizer(
        design.netlist, design.constraints, design.placement,
        design.sta_config, config or ClosureConfig(max_transforms=120),
    )


class TestGBAFlow:
    def test_fixes_violations(self):
        optimizer = _optimizer()
        report = optimizer.run()
        assert report.initial.violations > 0
        assert report.final.violations <= report.initial.violations
        assert report.final.wns > report.initial.wns

    def test_report_accounting(self):
        report = _optimizer().run()
        assert report.transforms_tried >= report.transforms_applied
        assert report.seconds_total > 0
        assert report.seconds_mgba == 0.0
        assert report.mgba_result is None

    def test_budget_respected(self):
        config = ClosureConfig(max_transforms=5, recovery=False)
        report = _optimizer(config).run()
        assert report.transforms_applied <= 5

    def test_acceptable_violations_early_exit(self):
        lenient = ClosureConfig(max_transforms=200,
                                acceptable_violations=10**6,
                                recovery=False)
        report = _optimizer(lenient).run()
        # Everything already "acceptable": no fixing happens.
        assert report.transforms_applied == 0

    def test_recovery_reduces_area_without_new_violations(self):
        with_recovery = _optimizer(
            ClosureConfig(max_transforms=120, recovery=True)
        ).run()
        without = _optimizer(
            ClosureConfig(max_transforms=120, recovery=False)
        ).run()
        assert with_recovery.final.area <= without.final.area + 1e-9
        assert with_recovery.final.violations <= without.final.violations


class TestMGBAFlow:
    def test_mgba_flow_runs_and_records_fit(self):
        config = ClosureConfig(max_transforms=120, use_mgba=True)
        report = _optimizer(config).run()
        assert report.mgba_result is not None
        assert report.seconds_mgba > 0
        assert report.mgba_result.pass_ratio_mgba > \
            report.mgba_result.pass_ratio_gba

    def test_mgba_flow_sees_fewer_initial_violations_to_fix(self):
        """The economic argument: corrected slacks -> fewer phantom fixes."""
        gba = _optimizer(ClosureConfig(max_transforms=0, recovery=False))
        gba_violations = gba.run().final.violations
        mgba = _optimizer(ClosureConfig(max_transforms=0, recovery=False,
                                        use_mgba=True))
        mgba_violations = mgba.run().final.violations
        assert mgba_violations <= gba_violations
