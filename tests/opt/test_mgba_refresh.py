"""Periodic mGBA re-fit inside the closure loop."""


from repro.designs.generator import DesignSpec, generate_design
from repro.mgba.flow import MGBAConfig
from repro.opt.closure import ClosureConfig, TimingClosureOptimizer

#: Tight enough that real (non-phantom) violations survive the fit.
TIGHT_SPEC = DesignSpec(
    "tight", seed=55, n_flops=14, n_inputs=4, n_outputs=3,
    depth_range=(3, 9), violation_quantile=0.45,
)


def _run(refresh_every):
    design = generate_design(TIGHT_SPEC)
    optimizer = TimingClosureOptimizer(
        design.netlist, design.constraints, design.placement,
        design.sta_config,
        ClosureConfig(
            max_transforms=60, use_mgba=True,
            mgba_refresh_every=refresh_every, recovery=False,
            mgba=MGBAConfig(k_per_endpoint=8, solver="direct", seed=0),
        ),
    )
    return optimizer.run()


class TestRefresh:
    def test_refreshes_happen(self):
        report = _run(refresh_every=3)
        assert report.fix_applied > 0, "spec must leave real violations"
        assert report.mgba_refreshes >= 1

    def test_refresh_time_counted_as_mgba(self):
        report = _run(refresh_every=3)
        baseline = _run(refresh_every=0)
        assert report.seconds_mgba > baseline.seconds_mgba

    def test_no_refresh_by_default(self):
        report = _run(refresh_every=0)
        assert report.mgba_refreshes == 0

    def test_refresh_does_not_hurt_closure(self):
        with_refresh = _run(refresh_every=3)
        without = _run(refresh_every=0)
        assert with_refresh.final.violations <= max(
            without.final.violations + 2, with_refresh.initial.violations
        )
