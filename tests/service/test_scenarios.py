"""Service-layer scenario_sweep verb: caching, batch, key rotation."""

import io
import json

import pytest

from repro.context import RunContext
from repro.designs.generator import generate_design
from repro.netlist.edit import resize_gate
from repro.service import Query, TimingService, run_batch, serve
from tests.conftest import SMALL_SPEC


@pytest.fixture()
def service(tmp_path):
    return TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
    ))


def _submit(service, design="fig2", **params):
    query = Query(op="scenario_sweep", design=design,
                  params=tuple(sorted(params.items())))
    return service.submit([query])[0]


class TestScenarioSweepVerb:
    def test_cold_then_warm(self, service):
        cold = _submit(service)
        warm = _submit(service)
        assert cold.ok and warm.ok
        assert cold.cached is False
        assert warm.cached is True
        assert cold.result == warm.result
        from repro.timing.sta import resolve_kernel

        # Scalar-kernel CI legs legitimately fall back to the fan-out.
        assert cold.result.stacked is (resolve_kernel(None) == "vector")

    def test_corner_set_changes_the_cache_key(self, service):
        _submit(service)
        custom = _submit(service, corners=(("slow", 1.2), ("fast", 0.8)))
        assert custom.cached is False
        again = _submit(service, corners=(("slow", 1.2), ("fast", 0.8)))
        assert again.cached is True
        # Order is part of the artifact (merge tie-breaks depend on it).
        reordered = _submit(
            service, corners=(("fast", 0.8), ("slow", 1.2))
        )
        assert reordered.cached is False

    def test_convenience_method_matches_default_query(self, service):
        direct = service.scenario_sweep("fig2")
        assert _submit(service).cached is True  # same key as the default
        assert direct.corners == (("ss", 1.15), ("tt", 1.0), ("ff", 0.87))

    def test_disk_cache_survives_a_new_service(self, service, tmp_path):
        service.scenario_sweep("fig2")
        fresh = TimingService(context=RunContext.from_env(
            workers=1, backend="serial",
            cache_dir=str(tmp_path / "cache"),
        ))
        assert _submit(fresh).cached is True

    def test_change_rotates_the_key(self, service):
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        before = _submit(service, design="dut")
        assert before.ok and before.cached is False
        netlist = service.design("dut").netlist
        gate = netlist.combinational_gates()[0]
        change = resize_gate(netlist, gate, up=True)
        if change is None:
            change = resize_gate(netlist, gate, up=False)
        service.apply_change(change, design="dut")
        after = _submit(service, design="dut")
        assert after.cached is False  # rotated key: stale entry missed
        assert after.result != before.result


class TestScenarioSweepBatch:
    def test_jsonl_round_trip_with_request_id(self, service):
        source = io.StringIO(json.dumps({
            "id": 7, "op": "scenario_sweep", "design": "fig2",
            "corners": [["slow", 1.1], ["fast", 0.9]],
        }) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 1 and stats.errors == 0
        record = json.loads(sink.getvalue())
        assert record["id"] == 7 and record["ok"]
        assert record["op"] == "scenario_sweep"
        assert record["request_id"].startswith("r")
        result = record["result"]
        assert result["design"] == "fig2"
        assert [c[0] for c in result["corners"]] == ["slow", "fast"]
        assert {"setup", "hold", "merged", "dominant", "stacked"} \
            <= set(result)

    def test_run_batch_coalesces_duplicates(self, service):
        out = run_batch(service, [
            json.dumps({"id": "a", "op": "scenario_sweep",
                        "design": "fig2"}),
            json.dumps({"id": "b", "op": "scenario_sweep",
                        "design": "fig2"}),
        ])
        assert all(r["ok"] for r in out)
        assert out[0]["request_id"] == out[1]["request_id"]
        assert out[0]["result"] == out[1]["result"]

    def test_bad_corner_shape_is_an_error_record(self, service):
        out = run_batch(service, [json.dumps({
            "id": 1, "op": "scenario_sweep", "design": "fig2",
            "corners": [["only-a-name"]],
        })])
        assert out[0]["ok"] is False and "error" in out[0]
