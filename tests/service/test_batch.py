"""JSONL batch protocol tests: parsing, ordering, error records, serve."""

import io
import json

import pytest

from repro.context import RunContext
from repro.service import TimingService, run_batch, serve, write_responses


@pytest.fixture()
def service(tmp_path):
    return TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    ))


def lines(*records):
    return [json.dumps(r) for r in records]


class TestRunBatch:
    def test_responses_in_request_order_with_ids(self, service):
        out = run_batch(service, lines(
            {"id": "a", "op": "pba_slacks", "design": "fig2", "k": 8},
            {"id": "b", "op": "sta", "design": "fig2"},
        ))
        assert [r["id"] for r in out] == ["a", "b"]
        assert [r["op"] for r in out] == ["pba_slacks", "sta"]
        assert all(r["ok"] for r in out)
        assert out[1]["result"]["design"] == "fig2"

    def test_malformed_line_becomes_error_record(self, service):
        out = run_batch(service, [
            "this is not json",
            json.dumps({"id": 2, "op": "sta", "design": "fig2"}),
        ])
        assert out[0]["ok"] is False and "line 1" in out[0]["error"]
        assert out[1]["ok"] is True and out[1]["id"] == 2

    def test_missing_op_is_an_error(self, service):
        out = run_batch(service, lines({"design": "fig2"}))
        assert out[0]["ok"] is False

    def test_blank_lines_skipped(self, service):
        out = run_batch(service, [
            "", "   ", json.dumps({"op": "sta", "design": "fig2"}),
        ])
        assert len(out) == 1 and out[0]["ok"]

    def test_responses_are_json_serializable(self, service):
        out = run_batch(service, lines(
            {"op": "mgba_fit", "design": "fig2"},
        ))
        text = json.dumps(out)
        assert json.loads(text)[0]["result"]["converged"] is True

    def test_write_responses(self, service):
        out = run_batch(service, lines({"op": "sta", "design": "fig2"}))
        sink = io.StringIO()
        assert write_responses(out, sink) == 1
        assert json.loads(sink.getvalue().splitlines()[0])["ok"]


class TestServe:
    def test_line_by_line_with_flush(self, service):
        source = io.StringIO("\n".join(lines(
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "sta", "design": "fig2"},
        )) + "\n")
        sink = io.StringIO()
        assert serve(service, source, sink) == 2
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["id"] for r in records] == [1, 2]
        assert records[0]["cached"] is False
        assert records[1]["cached"] is True  # same query, warm

    def test_malformed_line_keeps_serving(self, service):
        source = io.StringIO(
            "garbage\n"
            + json.dumps({"id": 7, "op": "sta", "design": "fig2"}) + "\n"
        )
        sink = io.StringIO()
        assert serve(service, source, sink) == 2
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert records[0]["ok"] is False
        assert records[1]["ok"] is True and records[1]["id"] == 7
