"""JSONL batch protocol tests: parsing, ordering, error records, serve."""

import io
import json

import pytest

from repro.context import RunContext
from repro.service import (
    PROTOCOL_VERSION,
    TimingService,
    run_batch,
    serve,
    write_responses,
)


@pytest.fixture()
def service(tmp_path):
    return TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    ))


def lines(*records):
    return [json.dumps(r) for r in records]


class TestRunBatch:
    def test_responses_in_request_order_with_ids(self, service):
        out = run_batch(service, lines(
            {"id": "a", "op": "pba_slacks", "design": "fig2", "k": 8},
            {"id": "b", "op": "sta", "design": "fig2"},
        ))
        assert [r["id"] for r in out] == ["a", "b"]
        assert [r["op"] for r in out] == ["pba_slacks", "sta"]
        assert all(r["ok"] for r in out)
        assert all(r["v"] == PROTOCOL_VERSION for r in out)
        assert out[1]["result"]["design"] == "fig2"

    def test_malformed_line_becomes_error_record(self, service):
        out = run_batch(service, [
            "this is not json",
            json.dumps({"id": 2, "op": "sta", "design": "fig2"}),
        ])
        assert out[0]["ok"] is False and "line 1" in out[0]["error"]
        assert out[0]["v"] == PROTOCOL_VERSION  # errors are versioned too
        assert out[1]["ok"] is True and out[1]["id"] == 2

    def test_missing_op_is_an_error(self, service):
        out = run_batch(service, lines({"design": "fig2"}))
        assert out[0]["ok"] is False

    def test_blank_lines_skipped(self, service):
        out = run_batch(service, [
            "", "   ", json.dumps({"op": "sta", "design": "fig2"}),
        ])
        assert len(out) == 1 and out[0]["ok"]

    def test_responses_are_json_serializable(self, service):
        out = run_batch(service, lines(
            {"op": "mgba_fit", "design": "fig2"},
        ))
        text = json.dumps(out)
        assert json.loads(text)[0]["result"]["converged"] is True

    def test_write_responses(self, service):
        out = run_batch(service, lines({"op": "sta", "design": "fig2"}))
        sink = io.StringIO()
        assert write_responses(out, sink) == 1
        assert json.loads(sink.getvalue().splitlines()[0])["ok"]


class TestServe:
    def test_line_by_line_with_flush(self, service):
        source = io.StringIO("\n".join(lines(
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "sta", "design": "fig2"},
        )) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 2 and stats.errors == 0
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["id"] for r in records] == [1, 2]
        assert records[0]["cached"] is False
        assert records[1]["cached"] is True  # same query, warm

    def test_malformed_line_keeps_serving(self, service):
        source = io.StringIO(
            "garbage\n"
            + json.dumps({"id": 7, "op": "sta", "design": "fig2"}) + "\n"
        )
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 2 and stats.errors == 1
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert records[0]["ok"] is False
        assert records[1]["ok"] is True and records[1]["id"] == 7

    def test_failed_query_counts_as_error(self, service):
        source = io.StringIO(json.dumps(
            {"id": 1, "op": "sta", "design": "no_such_design"}
        ) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 1 and stats.errors == 1
        record = json.loads(sink.getvalue().splitlines()[0])
        assert record["ok"] is False and "error" in record

    def test_unknown_op_is_error_record(self, service):
        source = io.StringIO(json.dumps({"op": "explode"}) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 1 and stats.errors == 1


class TestProtocolVersion:
    """Every record — success, control, error — carries ``"v"``."""

    def test_all_record_shapes_are_versioned(self, service):
        out = run_batch(service, [
            json.dumps({"id": 1, "op": "sta", "design": "fig2"}),
            json.dumps({"id": 2, "op": "health"}),
            json.dumps({"id": 3, "op": "sta", "design": "missing"}),
            "not json at all",
        ])
        assert len(out) == 4
        assert [r["v"] for r in out] == [PROTOCOL_VERSION] * 4
        assert [r.get("ok") for r in out] == [True, True, False, False]

    def test_serve_records_are_versioned(self, service):
        source = io.StringIO(
            "garbage\n"
            + json.dumps({"id": 1, "op": "stats"}) + "\n"
        )
        sink = io.StringIO()
        serve(service, source, sink)
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["v"] for r in records] == [PROTOCOL_VERSION] * 2


class TestServeErrorPaths:
    """Schema-stable ``ok: false`` records for every failure shape."""

    ERROR_KEYS = {"v", "ok", "error"}

    def _serve(self, service, text):
        sink = io.StringIO()
        stats = serve(service, io.StringIO(text), sink)
        return stats, [json.loads(l) for l in sink.getvalue().splitlines()]

    def test_unknown_op_record_shape(self, service):
        stats, records = self._serve(
            service, json.dumps({"id": 5, "op": "explode"}) + "\n"
        )
        assert stats.errors == 1
        (record,) = records
        assert record["ok"] is False and record["v"] == PROTOCOL_VERSION
        assert record["id"] == 5  # the id survives an op failure
        assert "explode" in record["error"]
        assert self.ERROR_KEYS <= set(record)

    def test_malformed_json_record_shape(self, service):
        stats, records = self._serve(service, "{not json\n")
        assert stats.errors == 1
        (record,) = records
        assert record["ok"] is False and record["v"] == PROTOCOL_VERSION
        assert self.ERROR_KEYS <= set(record)

    def test_mid_batch_exception_keeps_serving(self, service):
        stats, records = self._serve(service, "\n".join([
            json.dumps({"id": 1, "op": "sta", "design": "fig2"}),
            json.dumps({"id": 2, "op": "sta", "design": "no_such"}),
            json.dumps({"id": 3, "op": "sta", "design": "fig2"}),
        ]) + "\n")
        assert stats.served == 3 and stats.errors == 1
        assert [r["ok"] for r in records] == [True, False, True]
        failed = records[1]
        assert failed["id"] == 2 and failed["v"] == PROTOCOL_VERSION
        assert failed["error"]
        assert records[2]["cached"] is True  # the failure poisoned nothing

    def test_exit_code_2_per_error_path(self, monkeypatch, capsys):
        from repro.cli import main

        for text in (
            json.dumps({"op": "explode"}) + "\n",
            "{not json\n",
            json.dumps({"op": "sta", "design": "no_such"}) + "\n",
        ):
            monkeypatch.setattr("sys.stdin", io.StringIO(text))
            assert main(["serve", "--no-cache"]) == 2
            captured = capsys.readouterr()
            record = json.loads(captured.out.splitlines()[0])
            assert record["ok"] is False
            assert record["v"] == PROTOCOL_VERSION


class TestRequestIds:
    def test_serve_mints_distinct_request_ids(self, service):
        source = io.StringIO("\n".join(lines(
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "pba_slacks", "design": "fig2", "k": 8},
        )) + "\n")
        sink = io.StringIO()
        serve(service, source, sink)
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        ids = [r["request_id"] for r in records]
        assert len(set(ids)) == 2
        assert all(rid.startswith("r") for rid in ids)

    def test_request_id_lands_on_descendant_spans(self, service):
        from repro.obs import tracing

        source = io.StringIO("\n".join(lines(
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "pba_slacks", "design": "fig2", "k": 8},
        )) + "\n")
        with tracing() as tracer:
            serve(service, source, io.StringIO())
        tagged = {}
        for root in tracer.roots:
            for span_obj in root.walk():
                rid = span_obj.attrs.get("request_id")
                if rid is not None:
                    tagged.setdefault(rid, []).append(span_obj.name)
        # Two requests -> two distinct IDs, each tagging a subtree that
        # reaches below the service layer (engine/PBA spans included).
        assert len(tagged) == 2
        deep = [names for names in tagged.values()
                if any(not n.startswith("service.") for n in names)]
        assert deep, f"no request-tagged engine spans: {tagged}"

    def test_coalesced_duplicates_share_the_computing_id(self, service):
        out = run_batch(service, lines(
            {"id": "a", "op": "sta", "design": "fig2"},
            {"id": "b", "op": "sta", "design": "fig2"},
        ))
        assert out[0]["request_id"] == out[1]["request_id"]


class TestControlVerbs:
    def test_stats_reports_cache_traffic(self, service):
        source = io.StringIO("\n".join(lines(
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "sta", "design": "fig2"},
            {"id": 3, "op": "stats"},
        )) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 3 and stats.errors == 0
        record = json.loads(sink.getvalue().splitlines()[2])
        assert record["ok"] is True and record["op"] == "stats"
        payload = record["result"]
        assert payload["cache"]["hit"] >= 1     # the repeated sta query
        assert payload["cache"]["miss"] >= 1
        assert payload["latency"]["count"] >= 2
        assert payload["queries"] >= 2
        assert "fig2" in payload["design_names"]

    def test_health_is_cheap_and_ok(self, service):
        out = run_batch(service, lines({"id": 9, "op": "health"}))
        assert out[0]["ok"] is True and out[0]["id"] == 9
        payload = out[0]["result"]
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0
        assert payload["cache_enabled"] is True

    def test_stats_in_batch_sees_the_batch_traffic(self, service):
        out = run_batch(service, lines(
            {"op": "stats"},
            {"id": 1, "op": "sta", "design": "fig2"},
        ))
        # Control verbs answer after the batch computes, so even a
        # leading stats line observes the sta query's cache traffic.
        assert out[0]["result"]["queries"] >= 1
        assert out[1]["ok"] is True
