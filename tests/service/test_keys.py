"""Content-addressing tests: keys move iff the content moves."""

import dataclasses

from repro import api
from repro.context import RunContext
from repro.mgba.flow import MGBAFlow
from repro.netlist.edit import resize_gate
from repro.service import keys
from tests.conftest import SMALL_SPEC, engine_for

from repro.designs.generator import generate_design


class TestComponentHashes:
    def test_same_content_same_key(self):
        a = generate_design(SMALL_SPEC)
        b = generate_design(SMALL_SPEC)
        assert keys.netlist_hash(a.netlist) == keys.netlist_hash(b.netlist)
        ka = keys.design_key(a.netlist, a.constraints, a.placement,
                             a.sta_config)
        kb = keys.design_key(b.netlist, b.constraints, b.placement,
                             b.sta_config)
        assert ka == kb and ka.token == kb.token

    def test_edit_rotates_netlist_hash(self):
        design = generate_design(SMALL_SPEC)
        before = keys.netlist_hash(design.netlist)
        gate = design.netlist.combinational_gates()[0]
        if resize_gate(design.netlist, gate, up=True) is None:
            resize_gate(design.netlist, gate, up=False)
        assert keys.netlist_hash(design.netlist) != before

    def test_missing_placement_is_stable(self):
        assert keys.placement_hash(None) == "none"

    def test_corner_lives_in_config_hash(self):
        design = generate_design(SMALL_SPEC)
        fast = dataclasses.replace(design.sta_config, delay_scale=0.8)
        assert (keys.sta_config_hash(design.sta_config)
                != keys.sta_config_hash(fast))

    def test_digest_separator(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert keys.digest(["ab", "c"]) != keys.digest(["a", "bc"])


class TestArtifactKeys:
    def test_pba_key_varies_with_knobs(self):
        design = generate_design(SMALL_SPEC)
        dk = keys.design_key(design.netlist, design.constraints,
                             design.placement, design.sta_config)
        base = keys.pba_slacks_key(dk, 64, False, "table")
        assert keys.pba_slacks_key(dk, 32, False, "table") != base
        assert keys.pba_slacks_key(dk, 64, True, "table") != base
        assert keys.pba_slacks_key(dk, 64, False, "none") != base

    def test_problem_fingerprint_deterministic(self):
        ctx = RunContext(workers=1, backend="serial", solver="direct",
                         k_per_endpoint=6)

        def build():
            engine = engine_for(generate_design(SMALL_SPEC))
            engine.update_timing()
            result = MGBAFlow(context=ctx).run(engine, apply=False)
            return result.problem

        fp_a = keys.problem_fingerprint(build())
        fp_b = keys.problem_fingerprint(build())
        assert fp_a == fp_b
        # The solver config is part of the solve key, not the A matrix.
        assert (keys.solve_key(fp_a, "direct", 0)
                != keys.solve_key(fp_a, "scg+rs", 0))
        assert (keys.solve_key(fp_a, "scg+rs", 0)
                != keys.solve_key(fp_a, "scg+rs", 1))

    def test_fit_key_covers_fit_knobs(self):
        design = generate_design(SMALL_SPEC)
        dk = keys.design_key(design.netlist, design.constraints,
                             design.placement, design.sta_config)
        a = keys.fit_key(dk, RunContext(solver="direct").fit_fingerprint())
        b = keys.fit_key(dk, RunContext(solver="scg+rs").fit_fingerprint())
        c = keys.fit_key(dk, RunContext(solver="direct",
                                        epsilon=0.2).fit_fingerprint())
        assert len({a, b, c}) == 3

    def test_scenario_key_covers_corner_matrix(self):
        design = generate_design(SMALL_SPEC)
        dk = keys.design_key(design.netlist, design.constraints,
                             design.placement, design.sta_config)
        base = keys.scenario_key(dk, [("ss", 1.15), ("ff", 0.87)])
        assert keys.scenario_key(dk, [("ss", 1.15), ("ff", 0.87)]) == base
        # Scale, name, order, and cardinality all rotate the key.
        assert keys.scenario_key(dk, [("ss", 1.2), ("ff", 0.87)]) != base
        assert keys.scenario_key(dk, [("sf", 1.15), ("ff", 0.87)]) != base
        assert keys.scenario_key(dk, [("ff", 0.87), ("ss", 1.15)]) != base
        assert keys.scenario_key(dk, [("ss", 1.15)]) != base

    def test_fig2_key_stable_across_loads(self):
        a = api.load_design("fig2")
        b = api.load_design("fig2")
        assert (keys.design_key(a.netlist, a.constraints, None,
                                a.sta_config).token
                == keys.design_key(b.netlist, b.constraints, None,
                                   b.sta_config).token)
