"""TimingService tests: cache transparency, coalescing, error capture."""

import pytest

from repro.context import RunContext
from repro.obs.metrics import default_registry
from repro.service import Query, ServiceError, TimingService
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC


def make_context(tmp_path, **overrides):
    base = dict(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    )
    base.update(overrides)
    return RunContext.from_env(**base)


@pytest.fixture()
def service(tmp_path):
    return TimingService(context=make_context(tmp_path))


class TestQueries:
    def test_sta_warm_equals_cold(self, service):
        cold = service.sta("fig2")
        warm = service.sta("fig2")
        assert cold == warm  # seconds excluded from equality

    def test_pba_and_fit(self, service):
        golden = service.pba_slacks("fig2", k=8)
        fit = service.mgba_fit("fig2")
        assert golden.k == 8
        assert fit.converged
        assert fit.pass_ratio_mgba >= fit.pass_ratio_gba

    def test_fit_leaves_engine_clean_for_pba(self, service):
        # The service runs fits with apply=False, so a later PBA query
        # must not trip PBAEngine's clean-engine requirement.
        service.mgba_fit("fig2")
        assert service.pba_slacks("fig2", k=8).slacks

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError):
            Query(op="explode", design="fig2")

    def test_unknown_design_is_error_record(self, service):
        (outcome,) = service.submit(
            [{"op": "sta", "design": "no-such-design"}]
        )
        assert not outcome.ok
        assert outcome.error


class TestCacheTransparency:
    def test_cold_vs_warm_across_services(self, tmp_path):
        """A fresh service over the same dir reproduces bit-identically."""
        registry = default_registry()
        cold_svc = TimingService(context=make_context(tmp_path))
        batch = [
            {"op": "sta", "design": "fig2"},
            {"op": "pba_slacks", "design": "fig2", "k": 8},
            {"op": "mgba_fit", "design": "fig2"},
        ]
        cold = cold_svc.submit(batch)
        before = {
            cls: registry.counter(f"cache.hit.{cls}").value
            for cls in ("sta", "pba", "fit")
        }
        warm_svc = TimingService(context=make_context(tmp_path))
        warm = warm_svc.submit(batch)
        for c, w in zip(cold, warm):
            assert c.ok and w.ok
            assert w.cached
            assert c.result == w.result
        for cls in ("sta", "pba", "fit"):
            assert (registry.counter(f"cache.hit.{cls}").value
                    > before[cls]), cls

    def test_cache_disabled_still_correct(self, tmp_path):
        cached = TimingService(context=make_context(tmp_path))
        uncached = TimingService(
            context=make_context(tmp_path, cache=False)
        )
        assert uncached.cache is None
        assert cached.sta("fig2") == uncached.sta("fig2")

    def test_fit_knob_change_rotates_fit_key(self, tmp_path):
        """Changing a fit knob re-fits instead of serving a stale hit."""
        registry = default_registry()
        service = TimingService(context=make_context(tmp_path))
        service.mgba_fit("fig2")
        hits = registry.counter("cache.hit.fit").value
        misses = registry.counter("cache.miss.fit").value
        service.mgba_fit("fig2", k_per_endpoint=2)
        assert registry.counter("cache.hit.fit").value == hits
        assert registry.counter("cache.miss.fit").value == misses + 1
        # The unchanged fingerprint still hits.
        service.mgba_fit("fig2")
        assert registry.counter("cache.hit.fit").value == hits + 1


class TestBatching:
    def test_duplicates_coalesce(self, service):
        registry = default_registry()
        before = registry.counter("service.coalesced").value
        out = service.submit([
            {"op": "sta", "design": "fig2"},
            {"op": "sta", "design": "fig2"},
            {"op": "sta", "design": "fig2"},
        ])
        assert registry.counter("service.coalesced").value == before + 2
        assert out[0].result is out[1].result is out[2].result

    def test_input_order_preserved(self, service):
        out = service.submit([
            {"op": "pba_slacks", "design": "fig2", "k": 8},
            {"op": "sta", "design": "fig2"},
        ])
        assert [o.query.op for o in out] == ["pba_slacks", "sta"]

    def test_thread_sharding_matches_serial(self, tmp_path):
        batch = [
            {"op": "sta", "design": "D1"},
            {"op": "sta", "design": "fig2"},
        ]
        serial = TimingService(
            context=make_context(tmp_path / "a")
        ).submit(batch)
        sharded = TimingService(
            context=make_context(tmp_path / "b", workers=2,
                                 backend="thread")
        ).submit(batch)
        for s, p in zip(serial, sharded):
            assert s.ok and p.ok
            assert s.result == p.result


class TestRegistration:
    def test_registered_bundle(self, tmp_path):
        service = TimingService(context=make_context(tmp_path))
        service.register_design("mine", design=generate_design(SMALL_SPEC))
        result = service.sta("mine")
        assert result.design == "mine"
        assert result.endpoints > 0

    def test_register_requires_exactly_one(self, tmp_path):
        service = TimingService(context=make_context(tmp_path))
        with pytest.raises(ServiceError):
            service.register_design("mine")

    def test_content_addressing_shares_artifacts(self, tmp_path):
        """Two names for identical content share one cache entry."""
        registry = default_registry()
        service = TimingService(context=make_context(tmp_path))
        service.register_design("a", design=generate_design(SMALL_SPEC))
        service.register_design("b", design=generate_design(SMALL_SPEC))
        hits = registry.counter("cache.hit.sta").value
        ra = service.sta("a")
        rb = service.sta("b")
        assert registry.counter("cache.hit.sta").value == hits + 1
        assert ra.design == "a" and rb.design == "b"
        assert ra.slacks == rb.slacks
