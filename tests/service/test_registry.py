"""Verb registry tests: one source of truth for every dispatch path.

The registry (`repro/service/registry.py`) is what `submit`,
`run_batch`, `serve`, the CLI, and the docs all derive from — these
tests pin the projection invariants and diff the generated verb table
against the copies embedded in `docs/service.md` and `docs/api.md`,
so the docs cannot drift from the code.
"""

from pathlib import Path

import pytest

from repro.service import TimingService
from repro.service.registry import (
    CONTROL_OPS,
    QUERY_OPS,
    VERBS,
    VERBS_BY_OP,
    verb,
    verb_table_markdown,
)

DOCS = Path(__file__).resolve().parents[2] / "docs"


class TestRegistry:
    def test_ops_unique(self):
        ops = [v.op for v in VERBS]
        assert len(ops) == len(set(ops))

    def test_projections_partition_the_registry(self):
        assert set(QUERY_OPS) | set(CONTROL_OPS) == set(VERBS_BY_OP)
        assert not set(QUERY_OPS) & set(CONTROL_OPS)
        for row in VERBS:
            assert row.kind in ("query", "control")

    def test_every_handler_exists_on_the_service(self):
        service = TimingService.__new__(TimingService)  # no engine needed
        for row in VERBS:
            handler = getattr(type(service), row.handler, None)
            assert callable(handler), f"{row.op} -> {row.handler}"

    def test_query_verbs_have_cache_keys_and_schemas(self):
        for row in VERBS:
            if row.kind == "query":
                assert row.cache_key, row.op
                assert row.result_schema, row.op
            assert row.summary, row.op

    def test_verb_lookup(self):
        assert verb("sta").kind == "query"
        assert verb("health").kind == "control"
        with pytest.raises(KeyError):
            verb("explode")

    def test_expected_verbs_present(self):
        assert {"sta", "pba_slacks", "mgba_fit", "evaluate", "explain",
                "scenario_sweep", "what_if", "min_period"} == set(QUERY_OPS)
        assert {"stats", "health", "metrics_export"} == set(CONTROL_OPS)


class TestDocsEmbedding:
    """The docs' verb tables are the generated one, verbatim."""

    @pytest.mark.parametrize("page", ["service.md", "api.md"])
    def test_table_matches_generated(self, page):
        text = (DOCS / page).read_text()
        begin = "<!-- verb-table:begin -->"
        end = "<!-- verb-table:end -->"
        assert begin in text and end in text, (
            f"{page} lost its verb-table markers"
        )
        embedded = text.split(begin, 1)[1].split(end, 1)[0].strip()
        assert embedded == verb_table_markdown().strip(), (
            f"{page} verb table is stale — re-embed "
            f"repro.service.verb_table_markdown()"
        )
