"""Service ``what_if`` / ``min_period`` verbs: per-candidate caching.

The service caches what-if outcomes *per candidate* under
``what_if_key(design content, candidate)`` — a batch that repeats one
candidate across requests recomputes only the new ones, and an edit
rotates the design key so every cached outcome silently misses (and
re-hits after a revert, the PR-3 invalidation contract).
"""

import pytest

from repro.context import RunContext
from repro.designs.generator import generate_design
from repro.netlist.edit import resize_gate
from repro.obs.metrics import default_registry
from repro.service import ServiceError, TimingService
from tests.conftest import SMALL_SPEC


def make_context(tmp_path, **overrides):
    base = dict(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    )
    base.update(overrides)
    return RunContext.from_env(**base)


@pytest.fixture()
def service(tmp_path):
    svc = TimingService(context=make_context(tmp_path))
    svc.register_design("dut", design=generate_design(SMALL_SPEC))
    return svc


def candidates_for(service, count=3):
    gates = service.design("dut").netlist.combinational_gates()
    return [
        [{"kind": "resize", "gate": gates[i], "up": i % 2 == 0}]
        for i in range(count)
    ]


class TestWhatIfVerb:
    def test_repeat_request_is_fully_cached(self, service):
        candidates = candidates_for(service)
        (cold,) = service.submit([{
            "op": "what_if", "design": "dut", "candidates": candidates,
        }])
        (warm,) = service.submit([{
            "op": "what_if", "design": "dut", "candidates": candidates,
        }])
        assert cold.ok and warm.ok
        assert not cold.cached and warm.cached
        assert cold.result == warm.result
        assert warm.result.design == "dut"

    def test_partial_overlap_hits_per_candidate(self, service):
        registry = default_registry()
        first, second, third = candidates_for(service, 3)
        service.what_if("dut", [first, second])
        hits_before = registry.counter("cache.hit.what_if").value
        (outcome,) = service.submit([{
            "op": "what_if", "design": "dut",
            "candidates": [first, third],
        }])
        # `first` hit the per-candidate cache; `third` was computed, so
        # the request as a whole is not "cached".
        assert registry.counter("cache.hit.what_if").value > hits_before
        assert not outcome.cached
        assert outcome.result.candidates[0].ok

    def test_matches_facade_evaluation(self, service):
        candidates = candidates_for(service)
        from repro.opt.whatif import evaluate_what_if

        direct = evaluate_what_if(
            generate_design(SMALL_SPEC), candidates,
            RunContext(workers=1, backend="serial"),
        )
        via_service = service.what_if("dut", candidates)
        assert via_service.candidates == direct.candidates
        assert via_service.wns_baseline == direct.wns_baseline

    def test_edit_rotates_key_and_revert_rehits(self, service):
        candidates = candidates_for(service, 2)
        original = service.what_if("dut", candidates)
        key_before = service.design_key("dut").token

        netlist = service.design("dut").netlist
        gate = netlist.combinational_gates()[5]
        change = resize_gate(netlist, gate, up=True)
        if change is None:
            change = resize_gate(netlist, gate, up=False)
        service.apply_change(change, design="dut")
        assert service.design_key("dut").token != key_before
        edited = service.what_if("dut", candidates)
        assert edited.candidates  # computed fresh under the rotated key

        # Revert: pristine content -> same address -> cache hits again.
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        assert service.design_key("dut").token == key_before
        (outcome,) = service.submit([{
            "op": "what_if", "design": "dut", "candidates": candidates,
        }])
        assert outcome.cached
        assert outcome.result == original

    def test_live_engine_unharmed_by_what_if(self, service):
        before = service.sta("dut")
        service.what_if("dut", candidates_for(service))
        assert service.design_key("dut")  # key never rotated
        assert service.sta("dut") == before

    def test_parallel_context_matches_serial(self, tmp_path):
        serial_svc = TimingService(context=make_context(tmp_path / "a"))
        serial_svc.register_design("dut", design=generate_design(SMALL_SPEC))
        parallel_svc = TimingService(
            context=make_context(tmp_path / "b", workers=3, backend="thread")
        )
        parallel_svc.register_design(
            "dut", design=generate_design(SMALL_SPEC)
        )
        candidates = candidates_for(serial_svc)
        assert (serial_svc.what_if("dut", candidates)
                == parallel_svc.what_if("dut", candidates))

    def test_empty_candidates_rejected(self, service):
        with pytest.raises(ServiceError, match="non-empty"):
            service.what_if("dut", [])

    def test_eco_text_candidate_accepted(self, service):
        gates = service.design("dut").netlist.combinational_gates()
        spec_form = service.what_if(
            "dut", [[{"kind": "resize", "gate": gates[0], "up": True}]]
        )
        assert spec_form.candidates[0].ok
        text = "\n".join(spec_form.candidates[0].eco)
        via_text = service.what_if("dut", [text])
        assert via_text.candidates[0] == spec_form.candidates[0]


class TestMinPeriodVerb:
    def test_repeat_request_is_cached(self, service):
        (cold,) = service.submit(
            [{"op": "min_period", "design": "dut"}]
        )
        (warm,) = service.submit(
            [{"op": "min_period", "design": "dut"}]
        )
        assert cold.ok and warm.ok
        assert not cold.cached and warm.cached
        assert cold.result == warm.result
        assert warm.result.wns_at_period >= 0.0

    def test_tolerance_is_part_of_the_key(self, service):
        coarse = service.min_period("dut", tolerance=8.0)
        fine = service.min_period("dut", tolerance=0.5)
        assert fine.tolerance == 0.5
        assert fine.period <= coarse.period + 1e-9

    def test_corner_search_is_slower_and_labelled(self, service):
        nominal = service.min_period("dut")
        slow = service.min_period("dut", corner=("ss", 1.2))
        assert slow.period > nominal.period
        assert slow.corner == "ss:1.2"
        assert nominal.corner == ""

    def test_edit_rotates_min_period_key(self, service):
        service.min_period("dut")
        netlist = service.design("dut").netlist
        gate = netlist.combinational_gates()[0]
        change = resize_gate(netlist, gate, up=True)
        if change is None:
            change = resize_gate(netlist, gate, up=False)
        service.apply_change(change, design="dut")
        (outcome,) = service.submit(
            [{"op": "min_period", "design": "dut"}]
        )
        assert outcome.ok and not outcome.cached
