"""Invalidation property tests: a ChangeRecord never serves stale state.

The service's invalidation is key *rotation* — an edit changes the
design's content address, so stale artifacts can only miss.  These
tests drive random edit sequences through a cached service (updating
its engine incrementally via ``apply_change``) and compare every
post-edit answer against a from-scratch recompute on an identically
edited twin design.  Any stale artifact served, or any incremental
drift, breaks the equality.
"""

import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.context import RunContext
from repro.designs.generator import generate_design
from repro.netlist.edit import resize_gate
from repro.service import TimingService
from tests.conftest import SMALL_SPEC

#: (gate index, direction) edit script entries.
EDITS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
    min_size=1, max_size=3,
)


def apply_edit(netlist, gate_index, up):
    """Deterministically resize one gate; returns the ChangeRecord."""
    gates = netlist.combinational_gates()
    gate = gates[gate_index % len(gates)]
    change = resize_gate(netlist, gate, up=up)
    if change is None:  # already at the boundary: go the other way
        change = resize_gate(netlist, gate, up=not up)
    return change


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(edits=EDITS)
def test_fit_after_changes_matches_full_recompute(edits):
    """The cached fit after N edits equals an uncached from-scratch fit."""
    with tempfile.TemporaryDirectory() as scratch:
        ctx = RunContext.from_env(
            workers=1, backend="serial", cache_dir=scratch,
            solver="direct", k_per_endpoint=6, pba_k=8,
        )
        service = TimingService(context=ctx)
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        twin = generate_design(SMALL_SPEC)

        # Prime every artifact class so stale entries exist to be dodged.
        service.sta("dut")
        service.mgba_fit("dut")

        for gate_index, up in edits:
            change = apply_edit(service.design("dut").netlist,
                                gate_index, up)
            service.apply_change(change, design="dut")
            apply_edit(twin.netlist, gate_index, up)

        got_sta = service.sta("dut")
        got_fit = service.mgba_fit("dut")

        ref_ctx = ctx.replace(cache=False)
        ref_engine = api.make_engine(twin, ref_ctx)
        want_sta = api.sta_result_from_engine(ref_engine)
        want_fit = api.fit(ref_engine, ref_ctx, apply=False)

        assert got_sta.slacks == want_sta.slacks
        assert got_sta.wns == want_sta.wns
        assert got_fit.weights == want_fit.weights
        assert got_fit.s_mgba == want_fit.s_mgba


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(edits=EDITS)
def test_revert_rehits_previous_artifacts(edits):
    """Content addressing: the original content's key answers again."""
    with tempfile.TemporaryDirectory() as scratch:
        ctx = RunContext.from_env(
            workers=1, backend="serial", cache_dir=scratch,
            solver="direct", k_per_endpoint=6, pba_k=8,
        )
        service = TimingService(context=ctx)
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        original = service.sta("dut")
        key_before = service.design_key("dut").token

        gate_index, up = edits[0]
        change = apply_edit(service.design("dut").netlist, gate_index, up)
        service.apply_change(change, design="dut")
        assert service.design_key("dut").token != key_before
        # Computes fresh under the rotated key (slacks may coincide if
        # the resized gate sits off every worst path, so no inequality
        # is asserted — only that the rotated key is populated).
        service.sta("dut")

        # Revert by re-registering pristine content: same address, and
        # the artifact cached before the edit is served again.
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        assert service.design_key("dut").token == key_before
        assert service.sta("dut") == original
