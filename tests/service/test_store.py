"""Two-tier cache tests: LRU, disk store, eviction, corruption."""

import pickle

import pytest

from repro.obs.metrics import default_registry
from repro.service.store import (
    SCHEMA_VERSION,
    ArtifactCache,
    DiskStore,
    LRUCache,
)


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        lru = LRUCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a
        lru.put("c", 3)           # evicts b
        assert lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        store.put("sta", "k1", {"wns": -3.0})
        assert store.get("sta", "k1") == {"wns": -3.0}
        assert store.get("sta", "other") is None

    def test_versioned_layout_wipes_old_schemas(self, tmp_path):
        root = tmp_path / "cache"
        stale = root / "v999" / "sta"
        stale.mkdir(parents=True)
        (stale / "old.pkl").write_bytes(pickle.dumps("stale"))
        store = DiskStore(root)
        store.put("sta", "k", "fresh")
        assert not (root / "v999").exists()
        assert (root / f"v{SCHEMA_VERSION}" / "meta.json").exists()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        store.put("fit", "k", [1, 2, 3])
        path = store._path("fit", "k")
        path.write_bytes(b"\x80truncated garbage")
        assert store.get("fit", "k") is None
        assert not path.exists()

    def test_unknown_class_rejected(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        with pytest.raises(ValueError):
            store.put("weird", "k", 1)

    def test_eviction_under_byte_budget(self, tmp_path):
        store = DiskStore(tmp_path / "cache", max_bytes=1)
        store.put("sta", "a", "x" * 100)
        store.put("sta", "b", "y" * 100)
        # Budget of 1 byte: everything but at most one entry is evicted.
        assert store.total_bytes() <= 200
        assert len(store.entries()) <= 1

    def test_invalidate_single_and_class(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        store.put("sta", "a", 1)
        store.put("sta", "b", 2)
        store.put("pba", "c", 3)
        assert store.invalidate("sta", "a") == 1
        assert store.get("sta", "a") is None
        assert store.invalidate("sta") == 1  # b
        assert store.get("pba", "c") == 3
        assert store.invalidate() == 1      # c


class TestArtifactCache:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = DiskStore(tmp_path / "cache")
        warm = ArtifactCache(memory_entries=4, disk=disk)
        warm.put("sta", "k", "value")
        # Fresh cache over the same disk: first get is a disk hit...
        fresh = ArtifactCache(memory_entries=4, disk=DiskStore(
            tmp_path / "cache"
        ))
        assert fresh.get("sta", "k") == "value"
        # ...after which the memory tier answers even if disk vanishes.
        fresh.disk = None
        assert fresh.get("sta", "k") == "value"

    def test_hit_miss_counters(self, tmp_path):
        registry = default_registry()
        cache = ArtifactCache(
            memory_entries=4, disk=DiskStore(tmp_path / "cache")
        )
        h0 = registry.counter("cache.hit.sta").value
        m0 = registry.counter("cache.miss.sta").value
        assert cache.get("sta", "k") is None
        cache.put("sta", "k", 1)
        assert cache.get("sta", "k") == 1
        assert registry.counter("cache.hit.sta").value == h0 + 1
        assert registry.counter("cache.miss.sta").value == m0 + 1

    def test_from_context_disabled(self):
        from repro.context import RunContext

        assert ArtifactCache.from_context(
            RunContext(cache=False)
        ) is None
