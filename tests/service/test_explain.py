"""Service-layer explain verb: caching, batch round-trip, stats keys."""

import io
import json

import pytest

from repro.context import RunContext
from repro.service import Query, TimingService, run_batch, serve


@pytest.fixture()
def service(tmp_path):
    return TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    ))


def _submit_explain(service, **params):
    query = Query(op="explain", design="fig2",
                  params=tuple(sorted(params.items())))
    return service.submit([query])[0]


class TestExplainVerb:
    def test_cold_then_warm(self, service):
        cold = _submit_explain(service)
        warm = _submit_explain(service)
        assert cold.ok and warm.ok
        assert cold.cached is False
        assert warm.cached is True
        assert cold.result == warm.result

    def test_scope_changes_the_cache_key(self, service):
        _submit_explain(service)
        narrowed = _submit_explain(service, endpoint="FF4/D")
        assert narrowed.cached is False  # different key, not a hit
        deeper = _submit_explain(service, top_k=3)
        assert deeper.cached is False
        again = _submit_explain(service, top_k=3)
        assert again.cached is True

    def test_endpoint_narrowing(self, service):
        result = service.explain("fig2", endpoint="FF4/D")
        explanation = result.explanation
        assert explanation.summary.endpoints == 1
        assert explanation.paths[0].endpoint == "FF4/D"
        assert result.endpoint == "FF4/D"

    def test_disk_cache_survives_a_new_service(self, service, tmp_path):
        service.explain("fig2")
        fresh = TimingService(context=RunContext.from_env(
            workers=1, backend="serial",
            cache_dir=str(tmp_path / "cache"),
            solver="direct", k_per_endpoint=6, pba_k=8,
        ))
        assert _submit_explain(fresh).cached is True


class TestExplainBatch:
    def test_jsonl_round_trip_with_request_id(self, service):
        source = io.StringIO("\n".join([
            json.dumps({"id": 1, "op": "explain", "design": "fig2"}),
            json.dumps({"id": 2, "op": "explain", "design": "fig2",
                        "endpoint": "FF4/D", "top_k": 1}),
        ]) + "\n")
        sink = io.StringIO()
        stats = serve(service, source, sink)
        assert stats.served == 2 and stats.errors == 0
        records = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["id"] for r in records] == [1, 2]
        assert all(r["ok"] for r in records)
        assert all(r["request_id"].startswith("r") for r in records)
        full, narrowed = (r["result"] for r in records)
        assert full["design"] == "fig2"
        assert full["explanation"]["summary"]["endpoints"] == 4
        assert narrowed["explanation"]["summary"]["endpoints"] == 1
        row = narrowed["explanation"]["paths"][0]["rows"][0]
        assert {"edge", "src", "dst", "delay", "provenance"} <= set(row)

    def test_run_batch_coalesces_duplicates(self, service):
        out = run_batch(service, [
            json.dumps({"id": "a", "op": "explain", "design": "fig2"}),
            json.dumps({"id": "b", "op": "explain", "design": "fig2"}),
        ])
        assert all(r["ok"] for r in out)
        assert out[0]["request_id"] == out[1]["request_id"]
        assert out[0]["result"] == out[1]["result"]

    def test_unknown_endpoint_is_an_error_record(self, service):
        out = run_batch(service, [json.dumps(
            {"id": 1, "op": "explain", "design": "fig2",
             "endpoint": "NO/SUCH"}
        )])
        assert out[0]["ok"] is False and "error" in out[0]


class TestStatsLatency:
    def test_latency_reports_p99_and_max(self, service):
        service.explain("fig2")
        service.explain("fig2")
        latency = service.stats()["latency"]
        assert {"count", "mean", "p50", "p95", "p99", "max"} <= set(latency)
        assert latency["count"] >= 2
        assert latency["max"] >= latency["p99"] >= 0.0

    def test_latency_empty_service_is_zeroed(self, tmp_path):
        from repro.obs.metrics import default_registry

        default_registry().reset()  # latency histogram is global
        idle = TimingService(context=RunContext.from_env(
            workers=1, backend="serial",
            cache_dir=str(tmp_path / "idle"), solver="direct",
        ))
        latency = idle.stats()["latency"]
        assert latency["count"] == 0
        assert latency["max"] == 0.0 and latency["p99"] == 0.0
