"""Service observability tests: per-verb telemetry, flight dumps, SLOs.

The drift guarantees under test: every verb in the registry gets a
``verb``-labeled telemetry series the moment a service is constructed,
``ServeStats.by_verb`` carries one row per registry verb, and the
``health`` verb reports SLO status when a spec is configured.
"""

import io
import json

import pytest

from repro.context import RunContext
from repro.obs.expo import render_openmetrics
from repro.obs.flight import default_flight_recorder
from repro.obs.metrics import default_registry, labeled
from repro.obs.slo import SLOSpec
from repro.service import TimingService, serve
from repro.service.registry import VERBS


def _slo_spec(**overrides):
    payload = {
        "schema_version": 1, "name": "test-slo", "min_requests": 1,
        "latency": {"*": {"p95": 60.0}}, "error_rate_max": 1.0,
    }
    payload.update(overrides)
    return SLOSpec.from_dict(payload)


@pytest.fixture()
def service(tmp_path):
    default_flight_recorder().clear()
    return TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        solver="direct", k_per_endpoint=6, pba_k=8,
    ))


def _serve(service, *records, flight_dump=None):
    out = io.StringIO()
    stream = io.StringIO(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    stats = serve(service, stream, out, flight_dump=flight_dump)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return stats, responses


class TestVerbLabelDrift:
    def test_every_registry_verb_is_a_latency_label(self, service):
        # Constructing the service pre-registers the per-verb series,
        # so a scrape before any traffic already exposes every verb —
        # the dashboards' label set can never drift from the registry.
        text = render_openmetrics(default_registry())
        for row in VERBS:
            assert f'service_request_latency_count{{verb="{row.op}"}}' \
                in text, f"verb {row.op} missing from exposition"
            assert f'service_requests_total{{verb="{row.op}"}}' in text

    def test_dispatch_increments_the_labeled_counters(self, service):
        name = labeled("service.requests", verb="sta")
        before = default_registry().counter(name).value
        service.submit([{"op": "sta", "design": "fig2"}])[0]
        assert default_registry().counter(name).value == before + 1


class TestFlightCapture:
    def test_queries_land_in_the_flight_window(self, service):
        service.submit([{"op": "sta", "design": "fig2"}])[0]
        requests = default_flight_recorder().requests()
        record = next(r for r in requests if r.verb == "sta")
        assert record.design == "fig2"
        assert record.cached is False
        assert record.key_prefix  # the cache-key prefix is recorded
        assert record.request_id

    def test_control_verbs_recorded_without_cache_flag(self, service):
        _stats, responses = _serve(service, {"id": 1, "op": "health"})
        assert responses[0]["ok"]
        record = next(
            r for r in default_flight_recorder().requests()
            if r.verb == "health"
        )
        assert record.cached is None

    def test_failed_query_records_error_with_traceback(self, service):
        result = service.submit([{"op": "sta", "design": "no_such"}])[0]
        assert not result.ok
        errors = default_flight_recorder().errors()
        assert errors and "no_such" in errors[-1].message
        assert "Traceback" in errors[-1].traceback


class TestServeFlightDump:
    def test_error_path_exit_writes_schema_versioned_dump(
            self, service, tmp_path):
        dump_path = tmp_path / "flight.json"
        stats, responses = _serve(
            service,
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "sta", "design": "no_such_design"},
            flight_dump=dump_path,
        )
        assert stats.errors == 1
        assert stats.flight_dump == str(dump_path)
        dump = json.loads(dump_path.read_text())
        assert dump["schema_version"] == 1
        verbs = [r["verb"] for r in dump["requests"]]
        assert verbs.count("sta") == 2
        assert any(not r["ok"] for r in dump["requests"])
        assert dump["errors"]

    def test_clean_session_writes_no_dump(self, service, tmp_path):
        dump_path = tmp_path / "flight.json"
        stats, _responses = _serve(
            service, {"id": 1, "op": "health"}, flight_dump=dump_path,
        )
        assert stats.errors == 0
        assert stats.flight_dump is None
        assert not dump_path.exists()

    def test_escaping_exception_still_dumps(self, service, tmp_path):
        dump_path = tmp_path / "flight.json"

        class Boom(BaseException):
            pass

        def explode():
            raise Boom("serve loop died")

        service.health = explode  # crash inside the dispatch loop
        with pytest.raises(Boom):
            _serve(service, {"id": 1, "op": "health"},
                   flight_dump=dump_path)
        dump = json.loads(dump_path.read_text())
        assert any(e["kind"] == "Boom" for e in dump["errors"])


class TestServeStats:
    def test_by_verb_covers_the_whole_registry(self, service):
        stats, _responses = _serve(
            service,
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "health"},
        )
        rows = dict(
            (op, (served, errors)) for op, served, errors in stats.by_verb
        )
        assert set(rows) == {v.op for v in VERBS}
        assert rows["sta"] == (1, 0)
        assert rows["health"] == (1, 0)
        assert rows["mgba_fit"] == (0, 0)

    def test_slo_ok_is_none_without_a_spec(self, service):
        stats, _responses = _serve(service, {"id": 1, "op": "health"})
        assert stats.slo_ok is None

    def test_stats_verb_counts_derive_from_registry(self, service):
        # The registry is process-global, so judge deltas, not totals.
        before = service.stats()["verbs"]
        service.submit([{"op": "sta", "design": "fig2"}])[0]
        after = service.stats()["verbs"]
        assert set(after) == {v.op for v in VERBS}
        assert after["sta"]["requests"] == before["sta"]["requests"] + 1
        assert after["sta"]["errors"] == before["sta"]["errors"]


class TestMetricsExportVerb:
    def test_returns_valid_exposition(self, service):
        _stats, responses = _serve(
            service,
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "metrics_export"},
        )
        result = responses[1]["result"]
        assert result["format"] == "openmetrics"
        assert "openmetrics-text" in result["content_type"]
        assert result["text"].endswith("# EOF\n")
        assert 'service_requests_total{verb="sta"}' in result["text"]


class TestSLOHealth:
    def test_health_reports_slo_pass(self, tmp_path):
        default_flight_recorder().clear()
        service = TimingService(
            context=RunContext.from_env(
                workers=1, backend="serial",
                cache_dir=str(tmp_path / "cache"),
            ),
            slo_spec=_slo_spec(),
        )
        _stats, responses = _serve(
            service,
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "health"},
        )
        health = responses[1]["result"]
        assert health["status"] == "ok"
        assert health["slo"]["ok"] is True
        assert health["slo"]["spec"] == "test-slo"

    def test_health_flags_slo_violation(self, tmp_path):
        default_flight_recorder().clear()
        service = TimingService(
            context=RunContext.from_env(
                workers=1, backend="serial",
                cache_dir=str(tmp_path / "cache"),
            ),
            # Impossible ceiling: any real request violates it.
            slo_spec=_slo_spec(latency={"*": {"p95": 0.0}}),
        )
        stats, responses = _serve(
            service,
            {"id": 1, "op": "sta", "design": "fig2"},
            {"id": 2, "op": "health"},
        )
        health = responses[1]["result"]
        assert health["status"] == "slo_violation"
        assert health["slo"]["ok"] is False
        assert stats.slo_ok is False

    def test_health_without_spec_reports_none(self, service):
        _stats, responses = _serve(service, {"id": 1, "op": "health"})
        assert responses[0]["result"]["slo"] is None
