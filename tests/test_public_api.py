"""Public-API surface tests: everything advertised must import and work."""

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_flow(self):
        """The README / module docstring snippet must actually run."""
        design = repro.build_design("D1")
        engine = repro.STAEngine(
            design.netlist, design.constraints,
            design.placement, design.sta_config,
        )
        before = engine.summary()
        result = repro.MGBAFlow(
            repro.MGBAConfig(k_per_endpoint=5, solver="direct")
        ).run(engine)
        after = engine.summary()
        assert result.pass_ratio_mgba >= result.pass_ratio_gba
        assert after.wns >= before.wns - 1e-9

    def test_error_hierarchy(self):
        for name in ("LibertyError", "NetlistError", "SDCError",
                     "AOCVError", "TimingError", "SolverError",
                     "ParseError"):
            assert issubclass(getattr(repro, name), repro.ReproError)

    def test_facade_and_service_reexported(self):
        """The service-layer names ride on the package root."""
        assert repro.api is not None
        assert repro.RunContext is repro.api.RunContext
        assert repro.TimingService is repro.service.TimingService
        assert repro.evaluate_suite is repro.service.evaluate_suite

    def test_import_repro_does_not_warn(self, recwarn):
        """Importing the package must not trip its own deprecation shims."""
        import importlib

        importlib.reload(repro)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
            and "repro" in str(w.message)
        ]
