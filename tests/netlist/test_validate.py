"""Netlist lint tests."""

import pytest

from repro.errors import NetlistError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.validate import (
    Severity,
    assert_clean,
    find_combinational_loops,
    validate_netlist,
)

LIB = make_default_library()


def _clean():
    n = Netlist("ok", LIB)
    n.add_port("a", PortDirection.INPUT)
    n.add_port("y", PortDirection.OUTPUT)
    n.add_gate("u1", "INV_X1", {"A": "a", "Z": "y"})
    return n


def _codes(netlist):
    return {(v.code, v.severity) for v in validate_netlist(netlist)}


class TestChecks:
    def test_clean_netlist(self):
        assert validate_netlist(_clean()) == []
        assert_clean(_clean())  # must not raise

    def test_dangling_input_is_error(self):
        n = _clean()
        n.add_gate("u2", "NAND2_X1", {"A": "a", "Z": "w"})
        codes = _codes(n)
        assert ("DANGLING", Severity.ERROR) in codes

    def test_dangling_output_is_warning(self):
        n = _clean()
        n.add_gate("u2", "INV_X1", {"A": "a"})
        codes = _codes(n)
        assert ("DANGLING", Severity.WARNING) in codes

    def test_undriven_loaded_net_is_error(self):
        n = _clean()
        n.add_gate("u2", "INV_X1", {"A": "phantom", "Z": "w"})
        codes = _codes(n)
        assert ("UNDRIVEN", Severity.ERROR) in codes

    def test_unloaded_net_is_warning(self):
        n = _clean()
        n.add_gate("u2", "INV_X1", {"A": "a", "Z": "deadend"})
        codes = _codes(n)
        assert ("UNLOADED", Severity.WARNING) in codes

    def test_max_cap_warning(self):
        n = _clean()
        # 80 INV_X8 inputs (~5 fF each) on one X1 output blows 64 fF.
        for i in range(80):
            n.add_gate(f"load{i}", "INV_X8", {"A": "y_int", "Z": f"z{i}"})
        n.add_gate("drv", "INV_X1", {"A": "a", "Z": "y_int"})
        codes = _codes(n)
        assert ("MAXCAP", Severity.WARNING) in codes

    def test_assert_clean_raises_on_error(self):
        n = _clean()
        n.add_gate("u2", "NAND2_X1", {"A": "a", "Z": "w"})
        with pytest.raises(NetlistError):
            assert_clean(n)


class TestLoops:
    def test_no_loop_in_chain(self):
        assert find_combinational_loops(_clean()) == []

    def test_direct_loop_detected(self):
        n = Netlist("loop", LIB)
        n.add_gate("u1", "INV_X1", {"A": "w2", "Z": "w1"})
        n.add_gate("u2", "INV_X1", {"A": "w1", "Z": "w2"})
        loops = find_combinational_loops(n)
        assert len(loops) == 1
        assert set(loops[0]) >= {"u1", "u2"}

    def test_flop_breaks_loop(self):
        n = Netlist("seqloop", LIB)
        n.add_port("clk", PortDirection.INPUT)
        n.add_gate("u1", "INV_X1", {"A": "q", "Z": "w"})
        n.add_gate("ff", "DFF_X1", {"D": "w", "CK": "clk", "Q": "q"})
        assert find_combinational_loops(n) == []

    def test_loop_is_validation_error(self):
        n = Netlist("loop", LIB)
        n.add_gate("u1", "INV_X1", {"A": "w2", "Z": "w1"})
        n.add_gate("u2", "INV_X1", {"A": "w1", "Z": "w2"})
        codes = _codes(n)
        assert ("COMBLOOP", Severity.ERROR) in codes

    def test_generated_designs_are_loop_free(self, small_design):
        assert find_combinational_loops(small_design.netlist) == []
