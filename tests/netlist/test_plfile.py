"""Placement file I/O tests."""

import pytest

from repro.errors import ParseError
from repro.netlist.placement import Placement
from repro.netlist.plfile import parse_placement, write_placement


class TestRoundTrip:
    def test_round_trip(self, small_design):
        text = write_placement(small_design.placement)
        parsed = parse_placement(text)
        assert set(parsed.locations) == set(
            small_design.placement.locations
        )
        for name, point in small_design.placement.locations.items():
            assert parsed.location(name).x == pytest.approx(point.x, abs=1e-3)
            assert parsed.location(name).y == pytest.approx(point.y, abs=1e-3)

    def test_fixed_point(self):
        placement = Placement()
        placement.place("a", 1.5, 2.25)
        text = write_placement(placement)
        assert write_placement(parse_placement(text)) == text


class TestParse:
    def test_comments_and_blanks(self):
        parsed = parse_placement("# hi\n\na 1 2  # trailing\n")
        assert parsed.location("a").x == 1.0

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_placement("a 1\n")

    def test_bad_number_located(self):
        with pytest.raises(ParseError) as err:
            parse_placement("a 1 two\n")
        assert err.value.line == 1
