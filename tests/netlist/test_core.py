"""Unit + property tests for the netlist data model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection

LIB = make_default_library()


def _netlist():
    return Netlist("t", LIB)


def _tiny():
    """in0 -> inv1 -> inv2 -> out0"""
    n = _netlist()
    n.add_port("in0", PortDirection.INPUT)
    n.add_port("out0", PortDirection.OUTPUT)
    n.add_gate("inv1", "INV_X1", {"A": "in0", "Z": "w1"})
    n.add_gate("inv2", "INV_X1", {"A": "w1", "Z": "out0"})
    return n


class TestConstruction:
    def test_ports_create_nets(self):
        n = _tiny()
        assert "in0" in n.nets and "out0" in n.nets

    def test_input_port_drives_its_net(self):
        n = _tiny()
        assert n.net_driver("in0") == PinRef(None, "in0")

    def test_output_port_loads_its_net(self):
        n = _tiny()
        assert PinRef(None, "out0") in n.net_loads("out0")

    def test_duplicate_gate_rejected(self):
        n = _tiny()
        with pytest.raises(NetlistError):
            n.add_gate("inv1", "INV_X1")

    def test_duplicate_port_rejected(self):
        n = _tiny()
        with pytest.raises(NetlistError):
            n.add_port("in0", PortDirection.INPUT)

    def test_unknown_cell_rejected(self):
        with pytest.raises(Exception):
            _netlist().add_gate("g", "NOT_A_CELL")

    def test_multiple_drivers_rejected(self):
        n = _tiny()
        with pytest.raises(NetlistError):
            # inv2 output already on out0; try driving w1 again
            n.add_gate("inv3", "INV_X1", {"A": "in0", "Z": "w1"})


class TestConnectivity:
    def test_driver_and_loads(self):
        n = _tiny()
        assert n.net_driver("w1") == PinRef("inv1", "Z")
        assert n.net_loads("w1") == [PinRef("inv2", "A")]

    def test_fanout_fanin_gates(self):
        n = _tiny()
        assert n.fanout_gates("inv1") == ["inv2"]
        assert n.fanin_gates("inv2") == ["inv1"]
        assert n.fanin_gates("inv1") == []

    def test_pin_net(self):
        n = _tiny()
        assert n.pin_net(PinRef("inv1", "Z")) == "w1"
        assert n.pin_net(PinRef("inv1", "B")) is None

    def test_net_load_capacitance(self):
        n = _tiny()
        expected = LIB.cell("INV_X1").pin("A").capacitance
        assert n.net_load_capacitance("w1") == pytest.approx(expected)


class TestEditing:
    def test_disconnect_reconnect(self):
        n = _tiny()
        n.disconnect("inv2", "A")
        assert n.net_loads("w1") == []
        n.connect("inv2", "A", "in0")
        assert PinRef("inv2", "A") in n.net_loads("in0")

    def test_reconnect_moves_load(self):
        n = _tiny()
        n.connect("inv2", "A", "in0")   # implicit disconnect from w1
        assert n.net_loads("w1") == []

    def test_remove_gate_cleans_indexes(self):
        n = _tiny()
        n.remove_gate("inv2")
        assert n.net_loads("w1") == []
        assert "inv2" not in n.gates

    def test_remove_connected_net_rejected(self):
        n = _tiny()
        with pytest.raises(NetlistError):
            n.remove_net("w1")

    def test_swap_cell_same_pins(self):
        n = _tiny()
        old = n.swap_cell("inv1", "INV_X4")
        assert old == "INV_X1"
        assert n.cell_of("inv1").name == "INV_X4"

    def test_swap_cell_missing_pin_rejected(self):
        n = _tiny()
        # Swapping INV (connected pins A, Z) to DFF (D, CK, Q) fails on A.
        with pytest.raises(NetlistError):
            n.swap_cell("inv1", "DFF_X1")


class TestAggregates:
    def test_totals(self):
        n = _tiny()
        inv = LIB.cell("INV_X1")
        assert n.total_area() == pytest.approx(2 * inv.area)
        assert n.total_leakage() == pytest.approx(2 * inv.leakage)
        assert n.buffer_count() == 0

    def test_stats(self):
        stats = _tiny().stats()
        assert stats == {
            "gates": 2, "nets": 3, "ports": 2, "flops": 0, "buffers": 0
        }

    def test_partitions(self):
        n = _tiny()
        n.add_gate("ff", "DFF_X1", {"D": "w1", "CK": "in0", "Q": "w2"})
        assert n.sequential_gates() == ["ff"]
        assert set(n.combinational_gates()) == {"inv1", "inv2"}


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25,
))
def test_index_consistency_after_random_edits(edit_plan):
    """Driver/load indexes always agree with gate connection maps."""
    n = _netlist()
    n.add_port("src", PortDirection.INPUT)
    for i in range(10):
        n.add_gate(f"g{i}", "INV_X1", {"A": "src", "Z": f"w{i}"})
    for a, b in edit_plan:
        if a == b:
            continue
        n.connect(f"g{a}", "A", f"w{b}")
    # Rebuild expectations from scratch and compare with the indexes.
    for net_name in n.nets:
        loads = set(n.net_loads(net_name))
        expected = set()
        for gate_name, gate in n.gates.items():
            for pin_name, net in gate.connections.items():
                if net == net_name and pin_name == "A":
                    expected.add(PinRef(gate_name, pin_name))
        for port_name, port in n.ports.items():
            if port_name == net_name and port.direction is PortDirection.OUTPUT:
                expected.add(PinRef(None, port_name))
        assert loads == expected, net_name
