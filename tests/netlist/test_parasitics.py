"""Parasitics extraction and SPEF-lite I/O tests."""

import pytest

from repro.errors import ParseError
from repro.netlist.parasitics import (
    NetParasitic,
    Parasitics,
    extract_parasitics,
    parse_spef,
    write_spef,
)
from repro.timing.sta import STAEngine
from tests.conftest import engine_for


class TestModel:
    def test_elmore_to_load(self):
        annotation = NetParasitic(capacitance=10.0, resistance=0.2)
        assert annotation.elmore_to_load(3.0) == pytest.approx(
            0.2 * (5.0 + 3.0)
        )

    def test_container(self):
        parasitics = Parasitics("top")
        parasitics.set_net("n1", 10.0, 0.1)
        assert "n1" in parasitics and len(parasitics) == 1
        assert parasitics.get("n2") is None


class TestExtraction:
    def test_covers_placed_driven_nets(self, small_design):
        parasitics = extract_parasitics(
            small_design.netlist, small_design.placement,
            r_per_nm=1e-6, c_per_nm=2e-4,
        )
        assert len(parasitics) > 50
        assert parasitics.coverage(small_design.netlist) > 0.5

    def test_values_match_geometry(self, small_design):
        from repro.timing.delaycalc import segment_length

        parasitics = extract_parasitics(
            small_design.netlist, small_design.placement,
            r_per_nm=1e-6, c_per_nm=2e-4,
        )
        net = next(iter(parasitics.nets))
        driver = small_design.netlist.net_driver(net)
        total = sum(
            segment_length(small_design.placement, driver, load)
            for load in small_design.netlist.net_loads(net)
        )
        assert parasitics.get(net).capacitance == pytest.approx(2e-4 * total)
        assert parasitics.get(net).resistance == pytest.approx(1e-6 * total)


class TestSpefIO:
    def test_round_trip(self, small_design):
        parasitics = extract_parasitics(
            small_design.netlist, small_design.placement,
            r_per_nm=1e-6, c_per_nm=2e-4,
        )
        parsed = parse_spef(write_spef(parasitics))
        assert set(parsed.nets) == set(parasitics.nets)
        for net, annotation in parasitics.nets.items():
            copy = parsed.get(net)
            assert copy.capacitance == pytest.approx(annotation.capacitance)
            assert copy.resistance == pytest.approx(annotation.resistance)

    def test_parse_minimal(self):
        text = (
            '*SPEF "repro-lite"\n*DESIGN top\n'
            "*D_NET n1 12.5\n*RES 0.08\n*END\n"
        )
        parasitics = parse_spef(text)
        assert parasitics.design == "top"
        assert parasitics.get("n1").capacitance == 12.5

    def test_unclosed_net_rejected(self):
        with pytest.raises(ParseError):
            parse_spef("*D_NET n1 5.0\n")

    def test_res_outside_net_rejected(self):
        with pytest.raises(ParseError):
            parse_spef("*RES 0.1\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_spef("*WAT 1\n")


class TestTimingWithParasitics:
    def test_annotated_engine_times(self, small_design):
        """An engine fed extracted parasitics (instead of geometry)
        produces sane, conservative timing."""
        parasitics = extract_parasitics(
            small_design.netlist, small_design.placement,
            small_design.sta_config.wire_r_per_nm,
            small_design.sta_config.wire_c_per_nm,
        )
        geometric = engine_for(small_design)
        annotated = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, small_design.sta_config,
        )
        annotated.calc.parasitics = parasitics
        annotated.update_timing()
        geo = {s.name: s.slack for s in geometric.setup_slacks()}
        ann = {s.name: s.slack for s in annotated.setup_slacks()}
        for name in geo:
            # Lumped pi sees the whole net's RC on every branch: the
            # annotated view can only be equal or more pessimistic.
            assert ann[name] <= geo[name] + 1e-6

    def test_single_load_nets_timing_neutral(self, small_design):
        """On single-load nets the lumped model equals geometry."""
        from repro.timing.delaycalc import DelayCalculator
        from repro.timing.graph import EdgeKind, TimingGraph

        parasitics = extract_parasitics(
            small_design.netlist, small_design.placement, 1e-6, 2e-4
        )
        graph = TimingGraph(small_design.netlist)
        plain = DelayCalculator(
            small_design.netlist, small_design.placement, 1e-6, 2e-4
        )
        annotated = DelayCalculator(
            small_design.netlist, small_design.placement, 1e-6, 2e-4,
            parasitics=parasitics,
        )
        checked = 0
        for edge in graph.live_edges():
            if edge.kind is not EdgeKind.NET:
                continue
            if len(small_design.netlist.net_loads(edge.net)) != 1:
                continue
            d_plain, _ = plain.net_edge(graph, edge, 20.0)
            d_annotated, _ = annotated.net_edge(graph, edge, 20.0)
            assert d_annotated == pytest.approx(d_plain, abs=1e-9)
            checked += 1
        assert checked > 10
