"""Structural Verilog parser/writer tests."""

import pytest

from repro.errors import ParseError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.verilog import parse_verilog, write_verilog

LIB = make_default_library()

SAMPLE = """
// a comment
module top (clk, in0, out0);
  input clk;
  input in0;
  output out0;
  wire w1;
  /* block
     comment */
  NAND2_X1 u1 (.A(in0), .B(w1), .Z(out0));
  DFF_X1 ff1 (.D(in0), .CK(clk), .Q(w1));
endmodule
"""


class TestParse:
    def test_sample(self):
        n = parse_verilog(SAMPLE, LIB)
        assert n.name == "top"
        assert set(n.ports) == {"clk", "in0", "out0"}
        assert set(n.gates) == {"u1", "ff1"}
        assert n.gate("u1").connections == {"A": "in0", "B": "w1", "Z": "out0"}

    def test_port_directions(self):
        n = parse_verilog(SAMPLE, LIB)
        assert n.ports["clk"].direction is PortDirection.INPUT
        assert n.ports["out0"].direction is PortDirection.OUTPUT

    def test_unknown_cell_is_located_error(self):
        bad = SAMPLE.replace("NAND2_X1", "NOCELL_X1")
        with pytest.raises(ParseError):
            parse_verilog(bad, LIB)

    def test_positional_connections_rejected(self):
        bad = "module m (a);\n input a;\n INV_X1 u (a, a);\nendmodule"
        with pytest.raises(ParseError):
            parse_verilog(bad, LIB)

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse_verilog("module m (); input a;", LIB)

    def test_undeclared_header_port(self):
        bad = "module m (a, ghost);\n input a;\nendmodule"
        with pytest.raises(ParseError):
            parse_verilog(bad, LIB)

    def test_empty_port_list(self):
        n = parse_verilog("module m ();\nendmodule", LIB)
        assert n.ports == {}


class TestRoundTrip:
    def _build(self):
        n = Netlist("rt", LIB)
        n.add_port("clk", PortDirection.INPUT)
        n.add_port("a", PortDirection.INPUT)
        n.add_port("y", PortDirection.OUTPUT)
        n.add_gate("ff", "DFF_X2", {"D": "a", "CK": "clk", "Q": "q"})
        n.add_gate("u1", "AOI21_X1",
                   {"A": "q", "B": "a", "C": "q", "Z": "y"})
        return n

    def test_round_trip_structure(self):
        original = self._build()
        text = write_verilog(original)
        parsed = parse_verilog(text, LIB)
        assert set(parsed.gates) == set(original.gates)
        assert set(parsed.nets) == set(original.nets)
        assert set(parsed.ports) == set(original.ports)
        for name, gate in original.gates.items():
            assert parsed.gate(name).cell_name == gate.cell_name
            assert parsed.gate(name).connections == gate.connections

    def test_round_trip_is_fixed_point(self):
        original = self._build()
        text = write_verilog(original)
        assert write_verilog(parse_verilog(text, LIB)) == text

    def test_generated_design_round_trips(self, small_design):
        text = write_verilog(small_design.netlist)
        parsed = parse_verilog(text, LIB)
        assert set(parsed.gates) == set(small_design.netlist.gates)
        assert set(parsed.nets) == set(small_design.netlist.nets)
