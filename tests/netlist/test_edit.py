"""Tests for high-level netlist edits (resize, buffer in/out)."""

import pytest

from repro.errors import NetlistError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection
from repro.netlist.edit import insert_buffer, remove_buffer, resize_gate
from repro.netlist.placement import Placement

LIB = make_default_library()


def _fanout_netlist():
    """drv drives three sinks on net w."""
    n = Netlist("t", LIB)
    n.add_port("a", PortDirection.INPUT)
    n.add_gate("drv", "INV_X1", {"A": "a", "Z": "w"})
    for i in range(3):
        n.add_gate(f"sink{i}", "INV_X1", {"A": "w", "Z": f"z{i}"})
    return n


class TestResize:
    def test_up_then_down_restores(self):
        n = _fanout_netlist()
        change = resize_gate(n, "drv", up=True)
        assert n.gate("drv").cell_name == "INV_X2"
        assert change.kind == "resize"
        assert "drv" in change.gates
        resize_gate(n, "drv", up=False)
        assert n.gate("drv").cell_name == "INV_X1"

    def test_at_family_edge_returns_none(self):
        n = _fanout_netlist()
        n.swap_cell("drv", "INV_X8")
        assert resize_gate(n, "drv", up=True) is None

    def test_touched_nets_listed(self):
        n = _fanout_netlist()
        change = resize_gate(n, "drv", up=True)
        assert set(change.nets) == {"a", "w"}


class TestInsertBuffer:
    def test_all_loads_rerouted_by_default(self):
        n = _fanout_netlist()
        change = insert_buffer(n, "w", "BUF_X2")
        buffer_name = change.gates[0]
        assert n.cell_of(buffer_name).is_buffer
        # Original net: only the buffer input remains as load.
        loads = n.net_loads("w")
        assert loads == [PinRef(buffer_name, "A")]
        # New net carries all three sinks.
        new_net = [x for x in change.nets if x != "w"][0]
        assert len(n.net_loads(new_net)) == 3

    def test_partial_reroute(self):
        n = _fanout_netlist()
        keep = PinRef("sink0", "A")
        move = [PinRef("sink1", "A"), PinRef("sink2", "A")]
        insert_buffer(n, "w", "BUF_X2", loads=move)
        assert keep in n.net_loads("w")

    def test_undriven_net_rejected(self):
        n = _fanout_netlist()
        n.add_net("orphan")
        with pytest.raises(NetlistError):
            insert_buffer(n, "orphan", "BUF_X2")

    def test_foreign_load_rejected(self):
        n = _fanout_netlist()
        with pytest.raises(NetlistError):
            insert_buffer(n, "w", "BUF_X2", loads=[PinRef("drv", "A")])

    def test_buffer_placed_when_placement_given(self):
        n = _fanout_netlist()
        placement = Placement()
        placement.place("drv", 0, 0)
        for i in range(3):
            placement.place(f"sink{i}", 1000, 1000)
        change = insert_buffer(n, "w", "BUF_X2", placement=placement)
        assert placement.has(change.gates[0])


class TestRemoveBuffer:
    def test_insert_then_remove_restores_topology(self):
        n = _fanout_netlist()
        before_loads = set(n.net_loads("w"))
        change = insert_buffer(n, "w", "BUF_X2")
        buffer_name = change.gates[0]
        remove_buffer(n, buffer_name)
        assert set(n.net_loads("w")) == before_loads
        assert buffer_name not in n.gates

    def test_non_buffer_rejected(self):
        n = _fanout_netlist()
        with pytest.raises(NetlistError):
            remove_buffer(n, "drv")

    def test_validation_stays_clean_through_cycle(self):
        from repro.netlist.validate import validate_netlist, Severity

        n = _fanout_netlist()
        n.add_port("y0", PortDirection.OUTPUT)
        n.connect("sink0", "Z", "y0")
        change = insert_buffer(n, "w", "BUF_X2")
        errors = [
            v for v in validate_netlist(n) if v.severity is Severity.ERROR
        ]
        assert errors == []
        remove_buffer(n, change.gates[0])
        errors = [
            v for v in validate_netlist(n) if v.severity is Severity.ERROR
        ]
        assert errors == []
