"""Placement model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.netlist.placement import Placement, Point


class TestPoints:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_manhattan_symmetric(self):
        a, b = Point(1, 9), Point(-4, 2)
        assert a.manhattan(b) == b.manhattan(a)


class TestPlacement:
    def test_place_and_query(self):
        p = Placement()
        p.place("g1", 100, 200)
        assert p.location("g1") == Point(100.0, 200.0)
        assert p.has("g1") and not p.has("g2")

    def test_unplaced_raises(self):
        with pytest.raises(NetlistError):
            Placement().location("ghost")

    def test_distance(self):
        p = Placement()
        p.place("a", 0, 0)
        p.place("b", 10, 20)
        assert p.distance("a", "b") == 30

    def test_bbox_half_perimeter(self):
        p = Placement()
        p.place("a", 0, 0)
        p.place("b", 100, 0)
        p.place("c", 50, 40)
        assert p.bbox_half_perimeter(["a", "b", "c"]) == 140

    def test_bbox_empty(self):
        assert Placement().bbox_half_perimeter([]) == 0.0

    def test_bbox_single_point(self):
        p = Placement()
        p.place("a", 5, 5)
        assert p.bbox_half_perimeter(["a"]) == 0.0

    def test_midpoint(self):
        p = Placement()
        p.place("a", 0, 0)
        p.place("b", 10, 20)
        assert p.midpoint_of("a", "b") == Point(5.0, 10.0)


coords = st.floats(-1e6, 1e6, allow_nan=False)


@given(st.lists(st.tuples(coords, coords), min_size=1, max_size=12))
def test_bbox_bounds_any_pairwise_distance(points):
    """Half-perimeter of the bbox >= Manhattan distance of any pair."""
    p = Placement()
    names = []
    for i, (x, y) in enumerate(points):
        p.place(f"n{i}", x, y)
        names.append(f"n{i}")
    half = p.bbox_half_perimeter(names)
    for a in names:
        for b in names:
            assert p.distance(a, b) <= half + 1e-6


@given(st.lists(st.tuples(coords, coords), min_size=2, max_size=8))
def test_bbox_monotone_under_subset(points):
    """Adding points can only grow the bounding box."""
    p = Placement()
    names = []
    for i, (x, y) in enumerate(points):
        p.place(f"n{i}", x, y)
        names.append(f"n{i}")
    assert (
        p.bbox_half_perimeter(names[:-1]) <= p.bbox_half_perimeter(names) + 1e-9
    )
