"""Pessimism-analysis tests."""

import math

import pytest

from repro.analysis import (
    EndpointPessimism,
    format_pessimism_report,
    pessimism_report,
    summarize_pessimism,
)
from tests.conftest import engine_for


@pytest.fixture(scope="module")
def rows(small_design):
    return pessimism_report(engine_for(small_design))


class TestReport:
    def test_covers_endpoints(self, rows, small_design):
        engine = engine_for(small_design)
        assert len(rows) == len(engine.graph.endpoint_nodes())

    def test_sorted_worst_first(self, rows):
        slacks = [r.gba_slack for r in rows]
        assert slacks == sorted(slacks)

    def test_pessimism_nonnegative(self, rows):
        for row in rows:
            assert row.pessimism >= -1e-9

    def test_phantom_detection(self, rows):
        """Generated designs have phantom violations by construction."""
        phantoms = [r for r in rows if r.is_phantom_violation]
        assert phantoms
        for row in phantoms:
            assert row.gba_slack < 0 <= row.golden_slack

    def test_fig2_phantom(self, fig2_engine):
        rows = pessimism_report(fig2_engine, k_paths=4)
        by_name = {r.name: r for r in rows}
        ff4 = by_name["FF4/D"]
        assert ff4.is_phantom_violation
        assert ff4.pessimism == pytest.approx(50.0)


class TestSummary:
    def test_counts_consistent(self, rows):
        summary = summarize_pessimism(rows)
        assert summary.endpoints == len(rows)
        assert (
            summary.real_violations + summary.phantom_violations
            == summary.gba_violations
        )
        assert 0 <= summary.phantom_fraction <= 1

    def test_mean_max_relation(self, rows):
        summary = summarize_pessimism(rows)
        assert summary.mean_pessimism <= summary.max_pessimism + 1e-9

    def test_empty(self):
        summary = summarize_pessimism([])
        assert summary.endpoints == 0
        assert summary.phantom_fraction == 0.0

    def test_infinite_pessimism_excluded_from_mean(self):
        rows = [
            EndpointPessimism("a", -10.0, float("inf")),
            EndpointPessimism("b", -10.0, 5.0),
        ]
        summary = summarize_pessimism(rows)
        assert math.isfinite(summary.mean_pessimism)
        assert summary.mean_pessimism == pytest.approx(15.0)


class TestFormatting:
    def test_verdicts_appear(self, rows):
        text = format_pessimism_report(rows)
        assert "PHANTOM" in text
        assert "pessimism mean / max" in text

    def test_row_cap(self, rows):
        text = format_pessimism_report(rows, max_rows=2)
        assert "more endpoints" in text


class TestCli:
    def test_pessimism_command(self, capsys):
        from repro.cli import main

        assert main(["pessimism", "D1", "--k-paths", "6", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "Pessimism report" in out
        assert "phantom" in out
