"""Shared fixtures.

Design generation is deterministic but not free, so the expensive
bundles are session-scoped and treated as read-only by tests; anything
that mutates a netlist builds its own copy via the factory fixtures.
"""

from __future__ import annotations

import pytest

from repro.designs.generator import DesignSpec, generate_design
from repro.designs.paper_example import build_fig2_design
from repro.liberty.builder import make_default_library, make_unit_delay_library
from repro.timing.sta import STAEngine

SMALL_SPEC = DesignSpec(
    "small", seed=11, n_flops=10, n_inputs=4, n_outputs=3,
    depth_range=(3, 7), violation_quantile=0.8,
)

MEDIUM_SPEC = DesignSpec(
    "medium", seed=23, n_flops=24, n_inputs=6, n_outputs=4,
    depth_range=(3, 10), cross_source_prob=0.45, violation_quantile=0.75,
)


@pytest.fixture(scope="session")
def default_library():
    return make_default_library()


@pytest.fixture(scope="session")
def unit_library():
    return make_unit_delay_library()


@pytest.fixture(scope="session")
def small_design():
    """Read-only small design bundle."""
    return generate_design(SMALL_SPEC)


@pytest.fixture(scope="session")
def medium_design():
    """Read-only medium design bundle."""
    return generate_design(MEDIUM_SPEC)


@pytest.fixture()
def fresh_small_design():
    """A mutable copy of the small design (regenerated)."""
    return generate_design(SMALL_SPEC)


@pytest.fixture()
def fresh_medium_design():
    """A mutable copy of the medium design (regenerated)."""
    return generate_design(MEDIUM_SPEC)


def engine_for(design) -> STAEngine:
    """Fresh engine over a design bundle."""
    return STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )


@pytest.fixture(scope="session")
def small_engine(small_design):
    """Read-only, timing-updated engine on the small design."""
    engine = engine_for(small_design)
    engine.update_timing()
    return engine


@pytest.fixture()
def fig2():
    """The paper's Fig. 2 example design (fresh each test)."""
    return build_fig2_design()


@pytest.fixture()
def fig2_engine(fig2):
    engine = STAEngine(fig2.netlist, fig2.constraints, None, fig2.sta_config)
    engine.update_timing()
    return engine
