"""Unit and property tests for 2-D lookup tables."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LibertyError
from repro.liberty.lut import LookupTable2D


def _table():
    return LookupTable2D(
        rows=[10.0, 20.0, 40.0],
        cols=[1.0, 4.0, 16.0],
        values=[[1.0, 2.0, 3.0],
                [2.0, 3.0, 4.0],
                [4.0, 5.0, 6.0]],
    )


class TestConstruction:
    def test_axes_must_be_increasing(self):
        with pytest.raises(LibertyError):
            LookupTable2D([2.0, 1.0], [1.0], [[1.0], [2.0]])

    def test_shape_must_match(self):
        with pytest.raises(LibertyError):
            LookupTable2D([1.0, 2.0], [1.0], [[1.0]])

    def test_empty_axis_rejected(self):
        with pytest.raises(LibertyError):
            LookupTable2D([], [1.0], [[]])

    def test_constant_table(self):
        table = LookupTable2D.constant(42.0)
        assert table.lookup(0.0, 0.0) == 42.0
        assert table.lookup(1e9, -1e9) == 42.0


class TestLookup:
    def test_exact_grid_points(self):
        table = _table()
        assert table.lookup(10.0, 1.0) == 1.0
        assert table.lookup(40.0, 16.0) == 6.0
        assert table.lookup(20.0, 4.0) == 3.0

    def test_midpoint_interpolation(self):
        table = _table()
        # Midway between rows 10 and 20 at column 1.0: (1+2)/2.
        assert table.lookup(15.0, 1.0) == pytest.approx(1.5)
        # Midway in both axes around the top-left cell.
        assert table.lookup(15.0, 2.5) == pytest.approx((1 + 2 + 2 + 3) / 4)

    def test_clamping_below_and_above(self):
        table = _table()
        assert table.lookup(0.0, 0.0) == 1.0        # clamps to (10, 1)
        assert table.lookup(1000.0, 1000.0) == 6.0  # clamps to (40, 16)

    def test_single_row_table(self):
        table = LookupTable2D([5.0], [1.0, 3.0], [[10.0, 20.0]])
        assert table.lookup(99.0, 2.0) == pytest.approx(15.0)

    def test_single_col_table(self):
        table = LookupTable2D([1.0, 3.0], [5.0], [[10.0], [20.0]])
        assert table.lookup(2.0, 99.0) == pytest.approx(15.0)


class TestOperations:
    def test_scaled(self):
        table = _table().scaled(2.0)
        assert table.lookup(10.0, 1.0) == 2.0

    def test_min_max(self):
        table = _table()
        assert table.min_value() == 1.0
        assert table.max_value() == 6.0

    def test_equality(self):
        assert _table() == _table()
        assert _table() != _table().scaled(2.0)


@given(
    slew=st.floats(-100, 500, allow_nan=False),
    load=st.floats(-100, 500, allow_nan=False),
)
def test_lookup_within_grid_bounds(slew, load):
    """Interpolation + clamping can never leave the value range."""
    table = _table()
    value = table.lookup(slew, load)
    assert table.min_value() - 1e-9 <= value <= table.max_value() + 1e-9


@given(
    s1=st.floats(0, 100, allow_nan=False),
    s2=st.floats(0, 100, allow_nan=False),
    load=st.floats(0, 20, allow_nan=False),
)
def test_lookup_monotone_when_grid_monotone(s1, s2, load):
    """A grid increasing along both axes interpolates monotonically."""
    table = _table()
    lo, hi = sorted((s1, s2))
    assert table.lookup(lo, load) <= table.lookup(hi, load) + 1e-9
