"""Unit tests for the Library container and size families."""

import pytest

from repro.errors import LibertyError
from repro.liberty.builder import make_default_library


@pytest.fixture(scope="module")
def lib():
    return make_default_library()


class TestLookup:
    def test_cell_lookup(self, lib):
        assert lib.cell("NAND2_X1").footprint == "NAND2"

    def test_unknown_cell(self, lib):
        with pytest.raises(LibertyError):
            lib.cell("MYSTERY_X9")

    def test_contains_and_len(self, lib):
        assert "INV_X1" in lib
        assert "NOPE" not in lib
        assert len(lib) > 50

    def test_duplicate_cell_rejected(self, lib):
        with pytest.raises(LibertyError):
            lib.add_cell(lib.cell("INV_X1"))


class TestSizeFamilies:
    def test_footprint_group_sorted_by_drive(self, lib):
        group = lib.footprint_group("NAND2")
        drives = [c.drive_strength for c in group]
        assert drives == sorted(drives)
        assert len(group) == 4

    def test_next_size_up_chain(self, lib):
        assert lib.next_size_up("INV_X1").name == "INV_X2"
        assert lib.next_size_up("INV_X8") is None

    def test_next_size_down_chain(self, lib):
        assert lib.next_size_down("INV_X2").name == "INV_X1"
        assert lib.next_size_down("INV_X1") is None

    def test_buffers_are_buffers(self, lib):
        buffers = lib.buffers()
        assert buffers and all(c.is_buffer for c in buffers)
        assert len(buffers) == 5  # X1..X16

    def test_sequential_partition(self, lib):
        seq = lib.sequential_cells()
        comb = lib.combinational_cells()
        assert all(c.is_sequential for c in seq)
        assert not any(c.is_sequential for c in comb)
        assert len(seq) + len(comb) == len(lib)
