"""Multi-VT library tests."""

import pytest

from repro.liberty.builder import make_default_library


@pytest.fixture(scope="module")
def lib():
    return make_default_library()


class TestFlavours:
    def test_three_flavours_for_logic(self, lib):
        flavours = {c.vt for c in lib.vt_flavours("NAND2_X2")}
        assert flavours == {"svt", "lvt", "hvt"}

    def test_flavours_sorted_leakiest_first(self, lib):
        flavours = lib.vt_flavours("NAND2_X2")
        leaks = [c.leakage for c in flavours]
        assert leaks == sorted(leaks, reverse=True)
        assert flavours[0].vt == "lvt"
        assert flavours[-1].vt == "hvt"

    def test_buffers_svt_only(self, lib):
        assert len(lib.vt_flavours("BUF_X2")) == 1

    def test_flops_svt_only(self, lib):
        assert len(lib.vt_flavours("DFF_X1")) == 1


class TestVtVariant:
    def test_same_drive_other_vt(self, lib):
        lvt = lib.vt_variant("NAND2_X4", "lvt")
        assert lvt.name == "NAND2_X4_LVT"
        assert lvt.drive_strength == 4.0
        assert lvt.function == "NAND2"

    def test_identity(self, lib):
        assert lib.vt_variant("NAND2_X4", "svt").name == "NAND2_X4"

    def test_missing_flavour_is_none(self, lib):
        assert lib.vt_variant("BUF_X2", "lvt") is None


class TestTradeoffs:
    def test_lvt_faster_and_leakier(self, lib):
        svt = lib.cell("XOR2_X1").arc_between("A", "Z")
        lvt = lib.cell("XOR2_X1_LVT").arc_between("A", "Z")
        assert lvt.delay.lookup(20, 8) < svt.delay.lookup(20, 8)
        assert lib.cell("XOR2_X1_LVT").leakage > lib.cell("XOR2_X1").leakage

    def test_hvt_slower_and_frugal(self, lib):
        svt = lib.cell("XOR2_X1").arc_between("A", "Z")
        hvt = lib.cell("XOR2_X1_HVT").arc_between("A", "Z")
        assert hvt.delay.lookup(20, 8) > svt.delay.lookup(20, 8)
        assert lib.cell("XOR2_X1_HVT").leakage < lib.cell("XOR2_X1").leakage

    def test_same_area_and_caps_across_vt(self, lib):
        svt = lib.cell("AOI21_X2")
        for vt in ("lvt", "hvt"):
            other = lib.vt_variant("AOI21_X2", vt)
            assert other.area == svt.area
            for pin in svt.input_pins:
                assert other.pin(pin.name).capacitance == pin.capacitance


class TestSizingStaysWithinVt:
    def test_footprint_groups_are_vt_pure(self, lib):
        for footprint in ("NAND2", "NAND2_LVT", "NAND2_HVT"):
            group = lib.footprint_group(footprint)
            assert len(group) == 4
            assert len({c.vt for c in group}) == 1

    def test_size_up_keeps_vt(self, lib):
        up = lib.next_size_up("NAND2_X1_LVT")
        assert up.name == "NAND2_X2_LVT"
        assert up.vt == "lvt"


class TestRoundTrip:
    def test_vt_fields_survive_liberty(self, lib):
        from repro.liberty.parser import parse_liberty
        from repro.liberty.writer import write_liberty

        parsed = parse_liberty(write_liberty(lib))
        for name in ("NAND2_X2_LVT", "NAND2_X2_HVT", "NAND2_X2"):
            original = lib.cell(name)
            copy = parsed.cell(name)
            assert copy.vt == original.vt
            assert copy.function == original.function
            assert copy.footprint == original.footprint
