"""lookup_many must agree with scalar lookup everywhere."""

import numpy as np
from hypothesis import given, strategies as st

from repro.liberty.builder import make_default_library
from repro.liberty.lut import LookupTable2D

LIB = make_default_library()
ARC = LIB.cell("NAND2_X2").arc_between("A", "Z")

floats = st.floats(-50, 500, allow_nan=False)


@given(st.lists(st.tuples(floats, floats), min_size=1, max_size=20))
def test_vectorized_matches_scalar(queries):
    slews = np.array([q[0] for q in queries])
    loads = np.array([q[1] for q in queries])
    batch = ARC.delay.lookup_many(slews, loads)
    for i, (slew, load) in enumerate(queries):
        assert np.isclose(batch[i], ARC.delay.lookup(slew, load),
                          rtol=1e-12, atol=1e-12)


@given(floats, floats)
def test_single_row_and_column_tables(slew, load):
    one_row = LookupTable2D([5.0], [1.0, 3.0], [[10.0, 20.0]])
    one_col = LookupTable2D([1.0, 3.0], [5.0], [[10.0], [20.0]])
    constant = LookupTable2D.constant(7.0)
    for table in (one_row, one_col, constant):
        batch = table.lookup_many(np.array([slew]), np.array([load]))
        assert np.isclose(batch[0], table.lookup(slew, load))


class TestPairLookup:
    """Shared-axis pair lookups must equal two independent lookups."""

    def test_shared_axes_bit_identical(self):
        from repro.liberty.lut import lookup_pair_many

        delay, slew_tab = ARC.delay, ARC.output_slew
        rng = np.random.default_rng(5)
        slews = rng.uniform(-10, 400, size=64)
        loads = rng.uniform(-5, 300, size=64)
        a, b = lookup_pair_many(delay, slew_tab, slews, loads)
        assert np.array_equal(a, delay.lookup_many(slews, loads))
        assert np.array_equal(b, slew_tab.lookup_many(slews, loads))

    def test_mismatched_axes_fall_back(self):
        from repro.liberty.lut import lookup_pair_many

        first = LookupTable2D(
            [1.0, 3.0], [1.0, 4.0], [[1.0, 2.0], [3.0, 4.0]]
        )
        second = LookupTable2D(
            [2.0, 5.0], [1.0, 4.0], [[5.0, 6.0], [7.0, 8.0]]
        )
        slews = np.array([0.5, 2.0, 9.0])
        loads = np.array([2.0, 2.0, 2.0])
        a, b = lookup_pair_many(first, second, slews, loads)
        assert np.array_equal(a, first.lookup_many(slews, loads))
        assert np.array_equal(b, second.lookup_many(slews, loads))

    def test_constant_tables_fall_back(self):
        from repro.liberty.lut import lookup_pair_many

        constant = LookupTable2D.constant(7.0)
        a, b = lookup_pair_many(
            constant, constant, np.array([1.0]), np.array([2.0])
        )
        assert a[0] == 7.0 and b[0] == 7.0
