"""lookup_many must agree with scalar lookup everywhere."""

import numpy as np
from hypothesis import given, strategies as st

from repro.liberty.builder import make_default_library
from repro.liberty.lut import LookupTable2D

LIB = make_default_library()
ARC = LIB.cell("NAND2_X2").arc_between("A", "Z")

floats = st.floats(-50, 500, allow_nan=False)


@given(st.lists(st.tuples(floats, floats), min_size=1, max_size=20))
def test_vectorized_matches_scalar(queries):
    slews = np.array([q[0] for q in queries])
    loads = np.array([q[1] for q in queries])
    batch = ARC.delay.lookup_many(slews, loads)
    for i, (slew, load) in enumerate(queries):
        assert np.isclose(batch[i], ARC.delay.lookup(slew, load),
                          rtol=1e-12, atol=1e-12)


@given(floats, floats)
def test_single_row_and_column_tables(slew, load):
    one_row = LookupTable2D([5.0], [1.0, 3.0], [[10.0, 20.0]])
    one_col = LookupTable2D([1.0, 3.0], [5.0], [[10.0], [20.0]])
    constant = LookupTable2D.constant(7.0)
    for table in (one_row, one_col, constant):
        batch = table.lookup_many(np.array([slew]), np.array([load]))
        assert np.isclose(batch[0], table.lookup(slew, load))
