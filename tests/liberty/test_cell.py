"""Unit tests for Cell/Pin/TimingArc."""

import pytest

from repro.errors import LibertyError
from repro.liberty.cell import ArcKind, Cell, Pin, PinDirection, TimingArc
from repro.liberty.lut import LookupTable2D


def _delay():
    return LookupTable2D.constant(10.0)


def _make_inv():
    cell = Cell("INV_T", area=1.0, leakage=2.0)
    cell.add_pin(Pin("A", PinDirection.INPUT, capacitance=1.0))
    cell.add_pin(Pin("Z", PinDirection.OUTPUT))
    cell.add_arc(TimingArc("A", "Z", ArcKind.COMBINATIONAL, _delay(), _delay()))
    return cell


class TestPins:
    def test_duplicate_pin_rejected(self):
        cell = _make_inv()
        with pytest.raises(LibertyError):
            cell.add_pin(Pin("A", PinDirection.INPUT))

    def test_unknown_pin_lookup(self):
        with pytest.raises(LibertyError):
            _make_inv().pin("Q")

    def test_direction_partition(self):
        cell = _make_inv()
        assert [p.name for p in cell.input_pins] == ["A"]
        assert [p.name for p in cell.output_pins] == ["Z"]

    def test_footprint_defaults_to_name(self):
        assert _make_inv().footprint == "INV_T"


class TestArcs:
    def test_arc_requires_existing_pins(self):
        cell = _make_inv()
        with pytest.raises(LibertyError):
            cell.add_arc(TimingArc("X", "Z", ArcKind.COMBINATIONAL,
                                   _delay(), _delay()))

    def test_delay_arc_requires_slew_table(self):
        with pytest.raises(LibertyError):
            TimingArc("A", "Z", ArcKind.COMBINATIONAL, _delay(), None)

    def test_constraint_arc_needs_no_slew(self):
        arc = TimingArc("D", "CK", ArcKind.SETUP, _delay())
        assert arc.output_slew is None

    def test_arc_between(self):
        cell = _make_inv()
        assert cell.arc_between("A", "Z") is not None
        assert cell.arc_between("Z", "A") is None

    def test_delay_vs_constraint_partition(self):
        cell = Cell("DFF_T", area=1.0, leakage=1.0, is_sequential=True)
        cell.add_pin(Pin("D", PinDirection.INPUT))
        cell.add_pin(Pin("CK", PinDirection.INPUT, is_clock=True))
        cell.add_pin(Pin("Q", PinDirection.OUTPUT))
        cell.add_arc(TimingArc("CK", "Q", ArcKind.CLK_TO_Q, _delay(), _delay()))
        cell.add_arc(TimingArc("D", "CK", ArcKind.SETUP, _delay()))
        cell.add_arc(TimingArc("D", "CK", ArcKind.HOLD, _delay()))
        assert len(cell.delay_arcs()) == 1
        assert len(cell.constraint_arcs()) == 2
        assert cell.clock_pin.name == "CK"
