"""Liberty-lite parser/writer tests, including the full round trip."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.liberty.builder import make_default_library, make_unit_delay_library
from repro.liberty.parser import parse_group_tree, parse_liberty
from repro.liberty.writer import write_liberty

MINIMAL = """
library (mini) {
  cell (INV_X1) {
    area : 0.5;
    cell_leakage_power : 1.5;
    drive_strength : 1;
    cell_footprint : "INV";
    pin (A) {
      direction : input;
      capacitance : 1.0;
    }
    pin (Z) {
      direction : output;
      max_capacitance : 64;
      timing () {
        related_pin : "A";
        timing_type : combinational;
        cell_rise (tmpl) {
          index_1 ("5, 20");
          index_2 ("1, 4");
          values ("10, 11", "12, 13");
        }
        rise_transition (tmpl) {
          index_1 ("5, 20");
          index_2 ("1, 4");
          values ("3, 4", "5, 6");
        }
      }
    }
  }
}
"""


class TestGenericGroups:
    def test_nested_groups_and_attributes(self):
        root = parse_group_tree("a (x) { k : v; b (y) { j : 2; } }")
        assert root.kind == "a" and root.args == ["x"]
        assert root.attributes == {"k": "v"}
        assert root.subgroups[0].attributes == {"j": "2"}

    def test_complex_attribute(self):
        root = parse_group_tree('t () { values ("1, 2", "3"); }')
        assert root.complex_attributes["values"] == ["1, 2", "3"]

    def test_comments_ignored(self):
        root = parse_group_tree("a () { /* noise \n more */ k : 1; }")
        assert root.attributes == {"k": "1"}

    def test_unterminated_group(self):
        with pytest.raises(ParseError):
            parse_group_tree("a () { k : 1;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_group_tree("a () { } junk")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as err:
            parse_group_tree("a () {\n  ? ;\n}")
        assert err.value.line >= 2


class TestSemantic:
    def test_minimal_library(self):
        lib = parse_liberty(MINIMAL)
        cell = lib.cell("INV_X1")
        assert cell.area == 0.5
        assert cell.footprint == "INV"
        arc = cell.arc_between("A", "Z")
        assert arc.delay.lookup(5, 1) == 10.0
        assert arc.delay.lookup(20, 4) == 13.0

    def test_top_group_must_be_library(self):
        with pytest.raises(ParseError):
            parse_liberty("cell (x) { }")

    def test_bad_direction(self):
        text = MINIMAL.replace("direction : input;", "direction : sideways;")
        with pytest.raises(ParseError):
            parse_liberty(text)

    def test_missing_related_pin(self):
        text = MINIMAL.replace('related_pin : "A";', "")
        with pytest.raises(ParseError):
            parse_liberty(text)


def _assert_same_library(a, b):
    assert set(a.cells) == set(b.cells)
    for name, cell_a in a.cells.items():
        cell_b = b.cells[name]
        assert cell_a.area == pytest.approx(cell_b.area)
        assert cell_a.leakage == pytest.approx(cell_b.leakage)
        assert cell_a.footprint == cell_b.footprint
        assert cell_a.is_sequential == cell_b.is_sequential
        assert cell_a.is_buffer == cell_b.is_buffer
        assert set(cell_a.pins) == set(cell_b.pins)
        for pin_name, pin_a in cell_a.pins.items():
            pin_b = cell_b.pins[pin_name]
            assert pin_a.direction == pin_b.direction
            assert pin_a.capacitance == pytest.approx(pin_b.capacitance)
            assert pin_a.is_clock == pin_b.is_clock
        assert len(cell_a.arcs) == len(cell_b.arcs)
        for arc_a in cell_a.delay_arcs():
            arc_b = next(
                x for x in cell_b.delay_arcs()
                if (x.from_pin, x.to_pin) == (arc_a.from_pin, arc_a.to_pin)
            )
            assert np.allclose(arc_a.delay.values, arc_b.delay.values)
            assert np.allclose(
                arc_a.output_slew.values, arc_b.output_slew.values
            )


class TestRoundTrip:
    def test_default_library_round_trips(self):
        lib = make_default_library()
        _assert_same_library(lib, parse_liberty(write_liberty(lib)))

    def test_unit_library_round_trips(self):
        lib = make_unit_delay_library()
        _assert_same_library(lib, parse_liberty(write_liberty(lib)))

    def test_double_round_trip_is_stable(self):
        lib = make_default_library()
        once = write_liberty(parse_liberty(write_liberty(lib)))
        assert once == write_liberty(lib)
