"""Physical sanity of the built-in characterized library."""

import pytest

from repro.liberty.builder import (
    GATE_DRIVES,
    LOAD_AXIS,
    SLEW_AXIS,
    make_default_library,
    make_unit_delay_library,
)


@pytest.fixture(scope="module")
def lib():
    return make_default_library()


class TestDriveScaling:
    def test_stronger_cells_are_faster_at_load(self, lib):
        """At a fixed heavy load, X4 must beat X1 on arc delay."""
        slew, load = 20.0, 32.0
        x1 = lib.cell("NAND2_X1").arc_between("A", "Z")
        x4 = lib.cell("NAND2_X4").arc_between("A", "Z")
        assert x4.delay.lookup(slew, load) < x1.delay.lookup(slew, load)

    def test_stronger_cells_cost_more_area_and_leakage(self, lib):
        for footprint in ("INV", "NAND2", "XOR2"):
            group = lib.footprint_group(footprint)
            areas = [c.area for c in group]
            leaks = [c.leakage for c in group]
            assert areas == sorted(areas)
            assert leaks == sorted(leaks)

    def test_stronger_cells_load_their_fanin_more(self, lib):
        x1 = lib.cell("INV_X1").pin("A").capacitance
        x8 = lib.cell("INV_X8").pin("A").capacitance
        assert x8 > x1

    def test_max_capacitance_scales_with_drive(self, lib):
        for drive in GATE_DRIVES:
            cell = lib.cell(f"INV_X{drive}")
            assert cell.pin("Z").max_capacitance == LOAD_AXIS[-1] * drive


class TestTables:
    def test_delay_increases_with_load(self, lib):
        arc = lib.cell("NOR2_X1").arc_between("A", "Z")
        slew = SLEW_AXIS[1]
        delays = [arc.delay.lookup(slew, load) for load in LOAD_AXIS]
        assert delays == sorted(delays)

    def test_delay_increases_with_slew(self, lib):
        arc = lib.cell("NOR2_X1").arc_between("A", "Z")
        load = LOAD_AXIS[1]
        delays = [arc.delay.lookup(slew, load) for slew in SLEW_AXIS]
        assert delays == sorted(delays)

    def test_every_input_has_an_arc_to_output(self, lib):
        for cell in lib.combinational_cells():
            output = cell.output_pins[0].name
            for pin in cell.input_pins:
                assert cell.arc_between(pin.name, output) is not None, (
                    f"{cell.name}: {pin.name} has no arc"
                )


class TestFlops:
    def test_dff_has_constraints_and_clock(self, lib):
        dff = lib.cell("DFF_X1")
        assert dff.is_sequential
        assert dff.clock_pin.name == "CK"
        kinds = {a.kind.value for a in dff.constraint_arcs()}
        assert kinds == {"setup", "hold"}

    def test_setup_larger_than_hold(self, lib):
        dff = lib.cell("DFF_X1")
        setup = next(a for a in dff.constraint_arcs()
                     if a.kind.value == "setup")
        hold = next(a for a in dff.constraint_arcs()
                    if a.kind.value == "hold")
        assert setup.delay.lookup(20, 20) > hold.delay.lookup(20, 20)


class TestUnitLibrary:
    def test_constant_delay(self):
        lib = make_unit_delay_library(gate_delay=100.0)
        arc = lib.cell("INV_U").arc_between("A", "Z")
        assert arc.delay.lookup(5, 1) == 100.0
        assert arc.delay.lookup(500, 500) == 100.0

    def test_zero_overhead_flop(self):
        lib = make_unit_delay_library()
        dff = lib.cell("DFF_U")
        clk2q = dff.arc_between("CK", "Q")
        assert clk2q.delay.lookup(10, 10) == 0.0
