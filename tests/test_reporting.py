"""JSON reporting tests."""

import json

import pytest

from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.mgba.validation import holdout_validation
from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.reporting import (
    closure_report_to_dict,
    load_json,
    mgba_result_to_dict,
    qor_to_dict,
    save_json,
    validation_to_dict,
)
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC, engine_for


@pytest.fixture(scope="module")
def flow_result(small_design):
    engine = engine_for(small_design)
    return MGBAFlow(MGBAConfig(k_per_endpoint=6, solver="direct")).run(
        engine, apply=False
    )


class TestSchemas:
    def test_qor_keys(self, small_engine):
        from repro.opt.qor import QoRMetrics

        payload = qor_to_dict(QoRMetrics.measure(small_engine))
        assert set(payload) == {
            "wns", "tns", "area", "leakage", "buffers", "violations"
        }

    def test_mgba_result_schema(self, flow_result):
        payload = mgba_result_to_dict(flow_result)
        assert payload["paths"] == flow_result.problem.num_paths
        assert payload["pass_ratio_mgba"] >= payload["pass_ratio_gba"]
        assert set(payload["seconds"]) == {
            "select", "pba", "solve", "apply", "total"
        }

    def test_closure_report_schema(self):
        design = generate_design(SMALL_SPEC)
        report = TimingClosureOptimizer(
            design.netlist, design.constraints, design.placement,
            design.sta_config,
            ClosureConfig(max_transforms=10, recovery=False),
        ).run()
        payload = closure_report_to_dict(report)
        assert payload["initial"]["violations"] >= payload["final"]["violations"]
        assert "mgba" not in payload  # GBA-only run

    def test_validation_schema(self, small_engine):
        report = holdout_validation(small_engine, k_fit=4, k_eval=10)
        payload = validation_to_dict(report)
        assert payload["generalizes"] == report.generalizes
        assert payload["eval_improvement"] == pytest.approx(
            report.eval_improvement
        )


class TestSerialization:
    def test_round_trip_via_disk(self, tmp_path, flow_result):
        payload = mgba_result_to_dict(flow_result)
        path = tmp_path / "r.json"
        save_json(payload, path)
        assert load_json(path) == json.loads(json.dumps(payload))

    def test_everything_is_json_safe(self, flow_result):
        json.dumps(mgba_result_to_dict(flow_result))
