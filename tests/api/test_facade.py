"""Facade tests: the ``repro.api`` surface is stable and frozen.

The exact export list is snapshot-asserted — adding a name means
updating the snapshot here *and* ``docs/api.md``; removing or renaming
one requires a deprecation shim for a release (the policy in
``docs/api.md``).
"""

import dataclasses

import pytest

from repro import api
from repro.context import RunContext

#: The supported surface, verbatim.  Update deliberately.
EXPECTED_SURFACE = [
    "RunContext",
    "STAResult",
    "GoldenSlacksResult",
    "FitResult",
    "ClosureResult",
    "ExplainResult",
    "ScenarioSweepResult",
    "CandidateResult",
    "WhatIfResult",
    "MinPeriodResult",
    "load_design",
    "make_engine",
    "run_sta",
    "golden_slacks",
    "fit",
    "evaluate",
    "close_timing",
    "explain_slack",
    "run_scenarios",
    "what_if",
    "min_period",
]


class TestSurface:
    def test_all_snapshot(self):
        assert api.__all__ == EXPECTED_SURFACE

    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_result_types_frozen(self):
        for cls in (api.STAResult, api.GoldenSlacksResult,
                    api.FitResult, api.ClosureResult,
                    api.ExplainResult, api.ScenarioSweepResult,
                    api.CandidateResult, api.WhatIfResult,
                    api.MinPeriodResult, RunContext):
            assert dataclasses.is_dataclass(cls)
            assert cls.__dataclass_params__.frozen, cls.__name__

    def test_seconds_excluded_from_equality(self):
        a = api.STAResult(
            design="x", wns=-1.0, tns=-2.0, violations=1,
            endpoints=2, slacks=(("e", -1.0),), seconds=0.5,
        )
        b = dataclasses.replace(a, seconds=99.0)
        assert a == b


class TestRunContext:
    def test_from_env_resolves_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "thread")
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        ctx = RunContext.from_env()
        assert ctx.workers == 3
        assert ctx.backend == "thread"
        assert ctx.cache is False
        assert ctx.cache_dir == "/tmp/elsewhere"

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CACHE", "0")
        ctx = RunContext.from_env(workers=1, cache=True)
        assert ctx.workers == 1
        assert ctx.cache is True

    def test_config_round_trip(self):
        ctx = RunContext(solver="direct", epsilon=0.1, k_per_endpoint=7)
        config = ctx.mgba_config()
        assert config.solver == "direct"
        assert config.epsilon == 0.1
        assert config.k_per_endpoint == 7
        back = RunContext.from_config(config)
        assert back.fit_fingerprint() == ctx.fit_fingerprint()

    def test_fingerprint_ignores_parallelism(self):
        a = RunContext(workers=1, backend="serial")
        b = RunContext(workers=8, backend="process")
        assert a.fit_fingerprint() == b.fit_fingerprint()


@pytest.fixture(scope="module")
def ctx():
    return RunContext.from_env(workers=1, backend="serial", cache=False)


class TestVerbs:
    def test_load_design_fig2(self):
        design = api.load_design("fig2")
        assert design.name == "paper_fig2"
        assert design.placement is None

    def test_load_design_suite(self):
        assert api.load_design("D1").name == "D1"

    def test_run_sta_deterministic(self, ctx):
        a = api.run_sta("fig2", ctx)
        b = api.run_sta("fig2", ctx)
        assert a == b
        assert a.wns == min(s for _, s in a.slacks)
        assert a.to_dict()["design"] == "paper_fig2"

    def test_golden_slacks(self, ctx):
        result = api.golden_slacks("fig2", k=8, context=ctx)
        sta = api.run_sta("fig2", ctx)
        # PBA can only remove pessimism: golden WNS >= GBA WNS.
        assert result.worst >= sta.wns - 1e-9

    def test_fit_on_engine_applies_weights(self, ctx):
        engine = api.make_engine("fig2", ctx)
        before = engine.summary().wns
        result = api.fit(engine, ctx.replace(solver="direct"))
        assert result.converged
        assert result.pass_ratio_mgba >= result.pass_ratio_gba
        assert engine.summary().wns >= before - 1e-9
        assert dict(result.weights) == result.weight_map()

    def test_fit_deterministic(self, ctx):
        fit_ctx = ctx.replace(solver="direct")
        a = api.fit("fig2", fit_ctx, apply=False)
        b = api.fit("fig2", fit_ctx, apply=False)
        assert a == b

    def test_evaluate_subset(self, ctx):
        reports = api.evaluate(["D1"], context=ctx)
        assert [r.name for r in reports] == ["D1"]

    def test_explain_slack_deterministic(self, ctx):
        a = api.explain_slack("fig2", context=ctx)
        b = api.explain_slack("fig2", context=ctx)
        assert a == b
        assert a.design == "paper_fig2"
        assert a.explanation.summary.endpoints == 4
        assert a.to_dict()["explanation"]["design"] == "paper_fig2"

    def test_explain_slack_endpoint_scope(self, ctx):
        narrowed = api.explain_slack("fig2", endpoint="FF4/D", context=ctx)
        assert narrowed.endpoint == "FF4/D"
        assert narrowed.explanation.summary.endpoints == 1

    def test_run_scenarios_stacked_equals_fanout(self, ctx):
        corners = [("slow", 1.1), ("fast", 0.9)]
        stacked = api.run_scenarios("fig2", corners=corners, context=ctx)
        fanout = api.run_scenarios(
            "fig2", corners=corners, context=ctx, stacked=False
        )
        from repro.timing.sta import resolve_kernel

        # Scalar-kernel CI legs legitimately fall back to the fan-out.
        assert stacked.stacked is (resolve_kernel(None) == "vector")
        assert fanout.stacked is False
        # stacked/seconds are provenance, excluded from equality:
        # both paths must produce bit-identical sweep content.
        assert stacked == fanout
        assert stacked.design == "paper_fig2"
        assert [name for name, _ in stacked.corners] == ["slow", "fast"]
        assert stacked.dominant == "slow"
        assert stacked.to_dict()["corners"] == (("slow", 1.1), ("fast", 0.9))

    def test_run_scenarios_default_corners(self, ctx):
        result = api.run_scenarios("fig2", context=ctx)
        assert [name for name, _ in result.corners] == ["ss", "tt", "ff"]
        assert len(result.setup) == 3 and len(result.hold) == 3

    def test_what_if_deterministic(self, ctx):
        candidates = [
            [{"kind": "insert_buffer", "net": "n3", "buffer_cell": "BUF_U"}]
        ]
        a = api.what_if("fig2", candidates, ctx)
        b = api.what_if("fig2", candidates, ctx)
        assert a == b
        assert a.design == "paper_fig2"
        assert a.candidates[0].ok
        assert a.to_dict()["best"] in (0, None)

    def test_what_if_on_engine_restores_it(self, ctx):
        engine = api.make_engine("fig2", ctx)
        before = api.sta_result_from_engine(engine)
        api.what_if(
            engine,
            [[{"kind": "insert_buffer", "net": "n3", "buffer_cell": "BUF_U"}]],
        )
        assert api.sta_result_from_engine(engine) == before

    def test_min_period_deterministic(self, ctx):
        a = api.min_period("fig2", tolerance=1.0, context=ctx)
        b = api.min_period("fig2", tolerance=1.0, context=ctx)
        assert a == b
        assert a.wns_at_period >= 0.0
        assert a.bracket_high - a.bracket_low <= a.tolerance + 1e-9

    def test_min_period_corner_is_slower(self, ctx):
        nominal = api.min_period("fig2", context=ctx)
        slow = api.min_period("fig2", corner=("ss", 1.2), context=ctx)
        assert slow.period > nominal.period
        assert slow.corner == "ss:1.2"
