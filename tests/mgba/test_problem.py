"""mGBA problem-construction tests."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import SolverError
from repro.mgba.problem import MGBAProblem, build_problem
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.pba.paths import TimingPath


def _toy_problem(epsilon=0.05, penalty=10.0):
    """2 paths x 2 gates, hand-checkable."""
    paths = [
        TimingPath(endpoint=1, launch=0, edges=(1,),
                   gba_slack=-40.0, pba_slack=10.0,
                   contributions=[("A", 100.0, 1.2), ("B", 100.0, 1.3)]),
        TimingPath(endpoint=2, launch=0, edges=(2,),
                   gba_slack=-10.0, pba_slack=0.0,
                   contributions=[("B", 100.0, 1.3)]),
    ]
    return build_problem(paths, epsilon=epsilon, penalty=penalty)


class TestBuild:
    def test_matrix_entries_are_base_times_derate(self):
        p = _toy_problem()
        dense = p.matrix.toarray()
        assert p.gates == ["A", "B"]
        assert dense[0, 0] == pytest.approx(120.0)
        assert dense[0, 1] == pytest.approx(130.0)
        assert dense[1, 0] == 0.0
        assert dense[1, 1] == pytest.approx(130.0)

    def test_rhs_is_negated_pessimism(self):
        p = _toy_problem()
        assert p.rhs[0] == pytest.approx(-50.0)
        assert p.rhs[1] == pytest.approx(-10.0)
        assert np.all(p.rhs <= 0)

    def test_empty_paths_rejected(self):
        with pytest.raises(SolverError):
            build_problem([])

    def test_unanalyzed_path_rejected(self):
        with pytest.raises(SolverError):
            build_problem([TimingPath(endpoint=1, launch=0, edges=(1, 2))])

    def test_shapes(self):
        p = _toy_problem()
        assert p.num_paths == 2 and p.num_gates == 2
        assert isinstance(p.matrix, sparse.csr_matrix)

    def test_from_real_paths(self, small_engine):
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 5
        )
        PBAEngine(small_engine).analyze(paths)
        p = build_problem(paths)
        assert p.num_paths == len(paths)
        assert p.num_gates == len(set().union(
            *[set(path.gates()) for path in paths]
        ))
        assert np.all(p.rhs <= 1e-9)


class TestObjective:
    def test_zero_solution_objective_is_pessimism_energy(self):
        p = _toy_problem(penalty=0.0)
        x0 = np.zeros(2)
        assert p.objective(x0) == pytest.approx(float(p.rhs @ p.rhs))

    def test_exact_solution_objective_near_zero(self):
        p = _toy_problem(penalty=0.0)
        x, *_ = np.linalg.lstsq(p.matrix.toarray(), p.rhs, rcond=None)
        assert p.objective(x) == pytest.approx(0.0, abs=1e-9)

    def test_violation_kicks_in_below_lower_bound(self):
        p = _toy_problem(epsilon=0.0)
        # Push Ax far below b: x very negative -> Ax << b -> violated.
        x = np.array([-10.0, -10.0])
        assert np.any(p.violation(x) > 0)
        assert p.objective(x) > float(
            (p.residual(x) @ p.residual(x)))

    def test_gradient_matches_finite_difference(self):
        p = _toy_problem(epsilon=0.01, penalty=5.0)
        rng = np.random.default_rng(3)
        x = rng.normal(0, 0.3, size=2)
        grad = p.gradient(x)
        eps = 1e-6
        for j in range(2):
            bump = np.zeros(2)
            bump[j] = eps
            numeric = (p.objective(x + bump) - p.objective(x - bump)) / (2 * eps)
            assert grad[j] == pytest.approx(numeric, rel=1e-4, abs=1e-4)

    def test_row_gradient_unbiased_scaling(self):
        p = _toy_problem()
        x = np.array([0.1, -0.2])
        full = p.gradient(x)
        both_rows = p.row_gradient(x, np.array([0, 1]))
        assert both_rows == pytest.approx(full)

    def test_row_norms(self):
        p = _toy_problem()
        norms = p.row_norms_squared()
        assert norms[0] == pytest.approx(120.0**2 + 130.0**2)
        assert norms[1] == pytest.approx(130.0**2)


class TestDerived:
    def test_corrected_slacks_identity(self):
        p = _toy_problem()
        x = np.array([-0.2, -0.1])
        corrected = p.corrected_slacks(x)
        assert corrected == pytest.approx(p.s_gba - p.matrix @ x)

    def test_subproblem_row_slice(self):
        p = _toy_problem()
        sub = p.subproblem(np.array([1]))
        assert sub.num_paths == 1
        assert sub.gates == p.gates
        assert sub.rhs[0] == p.rhs[1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            MGBAProblem(
                matrix=sparse.csr_matrix(np.ones((2, 2))),
                rhs=np.zeros(3),
                s_gba=np.zeros(3),
                s_pba=np.zeros(3),
                gates=["A", "B"],
            )


class TestRowGradientEquivalence:
    """The indptr-gather rewrite must match the old CSR-submatrix math.

    Bit-identical, not approximately: ``np.add.at`` accumulates in the
    same element order as scipy's sequential matvec loops, so stochastic
    solver trajectories are unchanged by the rewrite.
    """

    @staticmethod
    def _submatrix_row_gradient(p, x, rows):
        """The pre-rewrite implementation, kept as the oracle."""
        rows = np.asarray(rows)
        sub = p.matrix[rows]
        ax = sub @ x
        grad = 2.0 * (sub.T @ (ax - p.rhs[rows]))
        lower = p.lower_bound[rows]
        vio_mask = ax < lower
        if np.any(vio_mask):
            vio = ax[vio_mask] - lower[vio_mask]
            grad += 2.0 * p.penalty * (sub[vio_mask].T @ vio)
        scale = p.num_paths / max(len(rows), 1)
        return np.asarray(grad).ravel() * scale

    def _random_problem(self, rng, m=40, n=12, density=0.3):
        matrix = sparse.random(
            m, n, density=density, random_state=np.random.RandomState(
                rng.integers(0, 2**31)
            ), format="csr",
        )
        s_pba = rng.normal(0, 50, size=m)
        s_gba = s_pba - np.abs(rng.normal(0, 20, size=m))
        return MGBAProblem(
            matrix=matrix, rhs=s_gba - s_pba, s_gba=s_gba, s_pba=s_pba,
            gates=[f"g{j}" for j in range(n)],
        )

    def test_bit_identical_on_random_problems(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            p = self._random_problem(rng)
            x = rng.normal(0, 0.3, size=p.num_gates)
            k = int(rng.integers(1, p.num_paths))
            # Unsorted, possibly repeated rows — the sampling solvers
            # draw with replacement.
            rows = rng.integers(0, p.num_paths, size=k)
            got = p.row_gradient(x, rows)
            want = self._submatrix_row_gradient(p, x, rows)
            assert np.array_equal(got, want)

    def test_bit_identical_with_violations_active(self):
        rng = np.random.default_rng(11)
        p = self._random_problem(rng)
        # Push x so far negative every epsilon constraint is violated.
        x = np.full(p.num_gates, -10.0)
        rows = np.arange(p.num_paths)
        got = p.row_gradient(x, rows)
        want = self._submatrix_row_gradient(p, x, rows)
        assert np.any(p.violation(x) > 0)
        assert np.array_equal(got, want)

    def test_single_row(self):
        rng = np.random.default_rng(13)
        p = self._random_problem(rng)
        x = rng.normal(0, 0.3, size=p.num_gates)
        got = p.row_gradient(x, np.array([3]))
        want = self._submatrix_row_gradient(p, x, np.array([3]))
        assert np.array_equal(got, want)
