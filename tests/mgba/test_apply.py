"""Tests for turning solutions into engine weights."""

import numpy as np
import pytest

from repro.mgba.apply import solution_sparsity, weights_from_solution
from repro.mgba.problem import build_problem
from repro.pba.paths import TimingPath


def _problem():
    paths = [
        TimingPath(endpoint=1, launch=0, edges=(1,), gba_slack=-1.0,
                   pba_slack=0.0,
                   contributions=[("A", 100.0, 1.2), ("B", 100.0, 1.2),
                                  ("C", 100.0, 1.2)]),
    ]
    return build_problem(paths)


class TestWeights:
    def test_correction_becomes_one_plus_x(self):
        weights = weights_from_solution(_problem(), np.array([-0.2, 0.1, 0.0]))
        assert weights["A"] == pytest.approx(0.8)
        assert weights["B"] == pytest.approx(1.1)

    def test_near_zero_pruned(self):
        weights = weights_from_solution(
            _problem(), np.array([-0.2, 1e-9, 0.0])
        )
        assert "B" not in weights and "C" not in weights

    def test_floor_and_ceiling(self):
        weights = weights_from_solution(
            _problem(), np.array([-5.0, 9.0, 0.0])
        )
        assert weights["A"] == pytest.approx(0.3)
        assert weights["B"] == pytest.approx(3.0)

    def test_custom_bounds(self):
        weights = weights_from_solution(
            _problem(), np.array([-5.0, 0.0, 0.0]), derate_floor_ratio=0.9
        )
        assert weights["A"] == pytest.approx(0.9)


class TestSparsity:
    def test_fig3_metric(self):
        x = np.array([0.0, 0.005, -0.009, 0.5])
        assert solution_sparsity(x) == pytest.approx(0.75)

    def test_empty(self):
        assert solution_sparsity(np.array([])) == 1.0

    def test_window(self):
        x = np.array([0.05, -0.05])
        assert solution_sparsity(x, window=0.1) == 1.0
        assert solution_sparsity(x, window=0.01) == 0.0
