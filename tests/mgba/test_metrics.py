"""Metric tests: Eq. 10, Eq. 12, and the 5%/5ps pass rule."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.mgba.metrics import (
    mse,
    pass_ratio,
    pass_vector,
    relative_error_phi,
)


class TestPhi:
    def test_perfect_model(self):
        golden = np.array([10.0, -20.0, 5.0])
        assert relative_error_phi(golden, golden) == 0.0

    def test_known_value(self):
        golden = np.array([3.0, 4.0])       # norm 5
        model = np.array([3.0, 4.0 + 5.0])  # error norm 5
        assert relative_error_phi(model, golden) == pytest.approx(1.0)

    def test_zero_golden(self):
        assert relative_error_phi([0.0], [0.0]) == 0.0
        assert relative_error_phi([1.0], [0.0]) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(SolverError):
            relative_error_phi([1.0, 2.0], [1.0])


class TestMse:
    def test_is_phi_squared(self):
        golden = np.array([3.0, 4.0])
        model = np.array([3.3, 4.4])
        assert mse(model, golden) == pytest.approx(
            relative_error_phi(model, golden) ** 2
        )


class TestPassRatio:
    def test_relative_rule(self):
        golden = np.array([100.0])
        assert pass_ratio([104.0], golden) == 1.0   # 4% < 5%
        assert pass_ratio([106.0], golden) == 0.0   # 6% and 6 ps off

    def test_absolute_rule(self):
        # Near-zero golden slack: relative is useless, 5 ps saves it.
        golden = np.array([1.0])
        assert pass_ratio([4.0], golden) == 1.0     # 3 ps < 5 ps
        assert pass_ratio([7.0], golden) == 0.0

    def test_mixed_vector(self):
        golden = np.array([100.0, 1.0, -50.0, -200.0])
        model = np.array([104.0, 30.0, -50.5, -215.0])
        flags = pass_vector(model, golden)
        assert flags.tolist() == [True, False, True, False]
        assert pass_ratio(model, golden) == 0.5

    def test_empty_passes(self):
        assert pass_ratio([], []) == 1.0

    def test_custom_thresholds(self):
        golden = np.array([100.0])
        assert pass_ratio([110.0], golden, rel_tol=0.2) == 1.0


@given(st.lists(st.floats(-1e4, 1e4, allow_nan=False),
                min_size=1, max_size=20))
def test_identity_always_passes(values):
    arr = np.array(values)
    assert pass_ratio(arr, arr) == 1.0
    assert mse(arr, arr) == 0.0


@given(
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=10),
    st.floats(0.1, 50),
)
def test_phi_scales_linearly_with_error(values, scale):
    golden = np.array(values)
    if np.linalg.norm(golden) == 0:
        return
    error = np.ones_like(golden)
    small = relative_error_phi(golden + error, golden)
    large = relative_error_phi(golden + scale * error, golden)
    assert large == pytest.approx(scale * small, rel=1e-6)
