"""Solver tests: convergence, constraint handling, relative accuracy.

A shared medium-sized problem (built once from the session design) keeps
these fast while still exercising sparse paths.
"""

import numpy as np
import pytest

from repro.mgba.metrics import mse
from repro.mgba.problem import build_problem
from repro.mgba.solvers import (
    solve_direct,
    solve_gd,
    solve_scg,
    solve_with_row_sampling,
)
from repro.mgba.solvers.base import SolverResult, relative_change
from repro.mgba.solvers.scg import kaczmarz_probabilities
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths


@pytest.fixture(scope="module")
def problem(medium_design):
    from tests.conftest import engine_for

    engine = engine_for(medium_design)
    engine.update_timing()
    paths = enumerate_worst_paths(engine.graph, engine.state, 12)
    PBAEngine(engine).analyze(paths)
    return build_problem(paths)


def _model_mse(problem, x):
    return mse(problem.corrected_slacks(x), problem.s_pba)


class TestBase:
    def test_relative_change_guard_at_zero(self):
        assert relative_change(np.ones(3), np.zeros(3)) == float("inf")

    def test_relative_change_value(self):
        assert relative_change(
            np.array([1.1, 0.0]), np.array([1.0, 0.0])
        ) == pytest.approx(0.1)


class TestKaczmarz:
    def test_probabilities_follow_row_norms(self, problem):
        p = kaczmarz_probabilities(problem)
        norms = problem.row_norms_squared()
        assert p == pytest.approx(norms / norms.sum())
        assert p.sum() == pytest.approx(1.0)


class TestSolverQuality:
    def test_direct_reduces_mse_vs_gba(self, problem):
        result = solve_direct(problem)
        assert _model_mse(problem, result.x) < 0.05 * mse(
            problem.s_gba, problem.s_pba
        )

    def test_gd_converges(self, problem):
        result = solve_gd(problem, max_iter=3000)
        assert isinstance(result, SolverResult)
        assert _model_mse(problem, result.x) < 0.1 * mse(
            problem.s_gba, problem.s_pba
        )

    def test_scg_converges(self, problem):
        result = solve_scg(problem, seed=0)
        assert _model_mse(problem, result.x) < 0.1 * mse(
            problem.s_gba, problem.s_pba
        )

    def test_scg_rs_converges(self, problem):
        result = solve_with_row_sampling(problem, seed=0)
        assert _model_mse(problem, result.x) < 0.1 * mse(
            problem.s_gba, problem.s_pba
        )

    def test_all_solvers_similar_accuracy(self, problem):
        """Table 4's accuracy columns: same order of magnitude."""
        reference = _model_mse(problem, solve_direct(problem).x)
        for solve in (solve_gd,
                      lambda p: solve_scg(p, seed=1),
                      lambda p: solve_with_row_sampling(p, seed=1)):
            achieved = _model_mse(problem, solve(problem).x)
            assert achieved < max(20 * reference, 1e-3)


class TestConstraint:
    def test_solutions_respect_epsilon_bound(self, problem):
        """Eq. (5): corrected slack <= pba + eps|pba| (small tolerance
        because the penalty form enforces it softly)."""
        for result in (
            solve_direct(problem),
            solve_scg(problem, seed=0),
        ):
            corrected = problem.corrected_slacks(result.x)
            bound = problem.s_pba + problem.epsilon * np.abs(problem.s_pba)
            worst_overshoot = float(np.max(corrected - bound))
            assert worst_overshoot < 5.0  # ps, soft-constraint slop


class TestDeterminism:
    def test_scg_reproducible_with_seed(self, problem):
        a = solve_scg(problem, seed=42)
        b = solve_scg(problem, seed=42)
        assert np.array_equal(a.x, b.x)

    def test_rs_reproducible_with_seed(self, problem):
        a = solve_with_row_sampling(problem, seed=42)
        b = solve_with_row_sampling(problem, seed=42)
        assert np.array_equal(a.x, b.x)


class TestBookkeeping:
    def test_results_carry_metadata(self, problem):
        result = solve_with_row_sampling(problem, seed=0)
        assert result.solver == "scg+rs"
        assert result.runtime > 0
        assert result.iterations > 0
        assert result.extras["rounds"]

    def test_rounds_grow(self, problem):
        result = solve_with_row_sampling(problem, seed=0, min_rows=16)
        rows = [r["rows"] for r in result.extras["rounds"]]
        assert rows == sorted(rows)
