"""End-to-end mGBA flow tests — the paper's headline claims in miniature."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.mgba.flow import MGBAConfig, MGBAFlow, corrected_path_slacks
from tests.conftest import engine_for


@pytest.fixture(scope="module")
def flow_result(medium_design):
    engine = engine_for(medium_design)
    result = MGBAFlow(MGBAConfig(k_per_endpoint=10, seed=0)).run(engine)
    return engine, result


class TestHeadlineClaims:
    def test_pass_ratio_improves(self, flow_result):
        """Table 3's direction: mGBA correlates far better than GBA."""
        _, result = flow_result
        assert result.pass_ratio_mgba > result.pass_ratio_gba
        assert result.pass_ratio_mgba > 0.9
        assert result.pass_ratio_improvement > 0

    def test_mse_improves(self, flow_result):
        _, result = flow_result
        assert result.mse_mgba < 0.1 * result.mse_gba

    def test_no_paths_made_worse_in_aggregate(self, flow_result):
        """Table 3: 'no test case becomes worse than the original GBA'."""
        _, result = flow_result
        corrected = result.problem.corrected_slacks(result.solution.x)
        gba_err = np.abs(result.problem.s_gba - result.problem.s_pba)
        mgba_err = np.abs(corrected - result.problem.s_pba)
        assert mgba_err.mean() < gba_err.mean()

    def test_violations_do_not_increase(self, medium_design):
        engine = engine_for(medium_design)
        before = engine.summary().violations
        MGBAFlow(MGBAConfig(k_per_endpoint=10, seed=0)).run(engine)
        after = engine.summary().violations
        assert after <= before


class TestGraphConsistency:
    def test_graph_slacks_match_model(self, flow_result):
        """Installed weights reproduce the model's corrected slacks."""
        engine, result = flow_result
        graph_view = corrected_path_slacks(engine, result.paths)
        model_view = result.problem.corrected_slacks(result.solution.x)
        assert np.max(np.abs(graph_view - model_view)) < 1e-6

    def test_weights_installed(self, flow_result):
        engine, result = flow_result
        assert engine.weights
        assert set(engine.weights) <= set(result.problem.gates)


class TestFlowMechanics:
    def test_runtime_breakdown_positive(self, flow_result):
        _, result = flow_result
        assert result.seconds_select >= 0
        assert result.seconds_pba > 0
        assert result.seconds_solve > 0
        assert result.total_seconds >= result.seconds_solve

    def test_apply_false_leaves_engine_clean(self, medium_design):
        engine = engine_for(medium_design)
        MGBAFlow(MGBAConfig(k_per_endpoint=6, seed=0)).run(
            engine, apply=False
        )
        assert engine.weights == {}

    def test_unknown_solver_rejected(self, medium_design):
        engine = engine_for(medium_design)
        with pytest.raises(SolverError):
            MGBAFlow(MGBAConfig(solver="quantum")).run(engine)

    def test_path_budget_respected(self, medium_design):
        engine = engine_for(medium_design)
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=10, max_paths=30, seed=0)
        ).run(engine)
        assert result.problem.num_paths <= 30

    def test_rerun_resets_weights_first(self, medium_design):
        """A second flow invocation must fit against clean GBA."""
        engine = engine_for(medium_design)
        flow = MGBAFlow(MGBAConfig(k_per_endpoint=6, seed=0))
        first = flow.run(engine)
        second = flow.run(engine)
        assert second.mse_gba == pytest.approx(first.mse_gba, rel=1e-9)


class TestFig2Flow:
    def test_phantom_violation_removed(self, fig2):
        """The worked example: mGBA clears the 740-vs-690 phantom."""
        from repro.timing.sta import STAEngine

        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        assert engine.summary().violations == 1
        MGBAFlow(MGBAConfig(k_per_endpoint=4, solver="direct")).run(engine)
        assert engine.summary().violations == 0
