"""Path-selection scheme tests (§3.2)."""

import pytest

from repro.mgba.selection import (
    gate_coverage,
    global_topk,
    path_pool_gates,
    per_endpoint_topk,
    violating_paths,
)
from repro.pba.paths import TimingPath


def _path(endpoint, slack, gates):
    return TimingPath(
        endpoint=endpoint, launch=0, edges=(endpoint, int(slack * 10) or 1),
        gba_slack=slack,
        contributions=[(g, 100.0, 1.2) for g in gates],
    )


POOL = [
    _path(1, -50.0, ["a", "b"]),
    _path(1, -45.0, ["a", "c"]),
    _path(1, -40.0, ["a", "d"]),
    _path(2, -30.0, ["e", "f"]),
    _path(2, 10.0, ["e", "g"]),
    _path(3, 5.0, ["h"]),
]


class TestGlobalTopK:
    def test_takes_worst_globally(self):
        kept = global_topk(POOL, 2)
        assert [p.gba_slack for p in kept] == [-50.0, -45.0]

    def test_concentrates_on_few_gates(self):
        kept = global_topk(POOL, 2)
        fraction, hit, total = gate_coverage(kept, path_pool_gates(POOL))
        assert hit == 3 and total == 8
        assert fraction == pytest.approx(3 / 8)


class TestPerEndpointTopK:
    def test_every_endpoint_represented(self):
        kept = per_endpoint_topk(POOL, 1)
        assert {p.endpoint for p in kept} == {1, 2, 3}

    def test_keeps_worst_within_endpoint(self):
        kept = per_endpoint_topk(POOL, 1)
        by_endpoint = {p.endpoint: p for p in kept}
        assert by_endpoint[1].gba_slack == -50.0
        assert by_endpoint[2].gba_slack == -30.0

    def test_covers_more_gates_than_global(self):
        same_budget = 3
        global_cov, _, _ = gate_coverage(
            global_topk(POOL, same_budget), path_pool_gates(POOL)
        )
        endpoint_cov, _, _ = gate_coverage(
            per_endpoint_topk(POOL, 1), path_pool_gates(POOL)
        )
        assert endpoint_cov > global_cov

    def test_max_total_drops_least_critical(self):
        kept = per_endpoint_topk(POOL, 2, max_total=3)
        assert len(kept) == 3
        assert max(p.gba_slack for p in kept) <= -5.0


class TestHelpers:
    def test_violating_paths(self):
        assert len(violating_paths(POOL)) == 4

    def test_coverage_with_default_universe(self):
        fraction, hit, total = gate_coverage(POOL[:1])
        assert fraction == 1.0 and hit == total == 2

    def test_coverage_empty(self):
        assert gate_coverage([], set()) == (0.0, 0, 0)


class TestOnRealDesign:
    def test_endpoint_scheme_beats_global_on_coverage(self, small_engine):
        """The §3.2 effect on a generated design."""
        from repro.pba.enumerate import enumerate_worst_paths

        pool = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 20
        )
        from repro.pba.engine import PBAEngine

        PBAEngine(small_engine).analyze(pool)
        universe = path_pool_gates(pool)
        budget = max(len({p.endpoint for p in pool}), 8)
        cov_global, _, _ = gate_coverage(global_topk(pool, budget), universe)
        cov_endpoint, _, _ = gate_coverage(
            per_endpoint_topk(pool, 1), universe
        )
        assert cov_endpoint >= cov_global
