"""Property tests on the solvers over random consistent systems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from scipy import sparse

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers import solve_direct, solve_gd, solve_scg

solver_settings = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_problem(seed: int, m: int, n: int, nnz_per_row: int,
                    noise: float = 0.0) -> MGBAProblem:
    """A consistent (or near-consistent) mGBA-shaped random system."""
    rng = np.random.default_rng(seed)
    rows, cols, data = [], [], []
    for i in range(m):
        chosen = rng.choice(n, size=min(nnz_per_row, n), replace=False)
        for j in chosen:
            rows.append(i)
            cols.append(int(j))
            data.append(float(rng.uniform(50, 200)))   # d * lambda scale
    matrix = sparse.coo_matrix((data, (rows, cols)), shape=(m, n)).tocsr()
    x_true = np.zeros(n)
    support = rng.choice(n, size=max(1, n // 5), replace=False)
    x_true[support] = rng.uniform(-0.3, 0.0, size=support.size)
    rhs = matrix @ x_true + noise * rng.normal(size=m)
    s_pba = rng.uniform(-100, 300, size=m)
    return MGBAProblem(
        matrix=matrix,
        rhs=np.asarray(rhs).ravel(),
        s_gba=s_pba + np.asarray(rhs).ravel(),
        s_pba=s_pba,
        gates=[f"g{j}" for j in range(n)],
        epsilon=0.05,
    )


@solver_settings
@given(seed=st.integers(0, 10_000))
def test_direct_solves_consistent_systems(seed):
    problem = _random_problem(seed, m=60, n=25, nnz_per_row=6)
    result = solve_direct(problem)
    residual = problem.residual(result.x)
    # Ridge leaves a small bias; residual energy must be tiny relative
    # to the right-hand side.
    assert np.linalg.norm(residual) < 0.15 * np.linalg.norm(problem.rhs) + 1.0


@solver_settings
@given(seed=st.integers(0, 10_000))
def test_gd_monotone_objective_history(seed):
    problem = _random_problem(seed, m=40, n=15, nnz_per_row=5)
    result = solve_gd(problem, max_iter=500)
    history = result.history
    if len(history) >= 2:
        # Normalized-gradient descent is not strictly monotone, but the
        # tail must sit below the head.
        assert min(history) <= history[0] + 1e-9
        assert history[-1] <= history[0] * 1.01 + 1e-9


@solver_settings
@given(seed=st.integers(0, 10_000))
def test_scg_improves_over_x0(seed):
    problem = _random_problem(seed, m=60, n=25, nnz_per_row=6, noise=0.5)
    result = solve_scg(problem, seed=seed)
    assert result.objective <= problem.objective(
        np.zeros(problem.num_gates)
    ) + 1e-9


@solver_settings
@given(seed=st.integers(0, 10_000))
def test_scg_returns_best_seen_iterate(seed):
    problem = _random_problem(seed, m=50, n=20, nnz_per_row=5, noise=1.0)
    result = solve_scg(problem, seed=seed, max_iter=600)
    assert result.objective == pytest.approx(
        problem.objective(result.x)
    )
    if result.history:
        assert result.objective <= min(result.history) + 1e-9
