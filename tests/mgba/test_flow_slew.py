"""MGBAFlow with slew-recalculated golden."""


from repro.mgba.flow import MGBAConfig, MGBAFlow
from tests.conftest import engine_for


class TestSlewGoldenFlow:
    def test_flow_runs_with_recalc_slew(self, small_design):
        engine = engine_for(small_design)
        result = MGBAFlow(MGBAConfig(
            k_per_endpoint=8, solver="direct", recalc_slew=True,
        )).run(engine, apply=False)
        assert result.pass_ratio_mgba > result.pass_ratio_gba

    def test_slew_golden_is_harder_target(self, small_design):
        """More pessimism sources in the golden => bigger GBA error."""
        engine = engine_for(small_design)
        base = MGBAFlow(MGBAConfig(
            k_per_endpoint=8, solver="direct", recalc_slew=False,
        )).run(engine, apply=False)
        slew = MGBAFlow(MGBAConfig(
            k_per_endpoint=8, solver="direct", recalc_slew=True,
        )).run(engine, apply=False)
        assert slew.mse_gba >= base.mse_gba - 1e-12
        # And the fit still absorbs it.
        assert slew.pass_ratio_mgba > 0.9
