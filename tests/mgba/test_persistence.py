"""Weight persistence tests."""

import pytest

from repro.errors import SolverError
from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.mgba.persistence import (
    _structure_fingerprint as netlist_fingerprint,
    load_weights,
    save_weights,
    weights_from_json,
    weights_to_json,
)
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC, engine_for


@pytest.fixture()
def fitted():
    design = generate_design(SMALL_SPEC)
    engine = engine_for(design)
    result = MGBAFlow(
        MGBAConfig(k_per_endpoint=6, solver="direct")
    ).run(engine)
    return design, engine, result


class TestFingerprint:
    def test_deterministic(self):
        a = generate_design(SMALL_SPEC)
        b = generate_design(SMALL_SPEC)
        assert netlist_fingerprint(a.netlist) == netlist_fingerprint(b.netlist)

    def test_changes_with_structure(self):
        design = generate_design(SMALL_SPEC)
        before = netlist_fingerprint(design.netlist)
        victim = design.netlist.combinational_gates()[0]
        design.netlist.remove_gate(victim)
        assert netlist_fingerprint(design.netlist) != before

    def test_changes_with_cell_swap(self):
        design = generate_design(SMALL_SPEC)
        before = netlist_fingerprint(design.netlist)
        from repro.netlist.edit import resize_gate

        gate = design.netlist.combinational_gates()[0]
        if resize_gate(design.netlist, gate, up=True) is None:
            resize_gate(design.netlist, gate, up=False)
        assert netlist_fingerprint(design.netlist) != before


class TestRoundTrip:
    def test_save_load_restores_timing(self, fitted, tmp_path):
        design, engine, result = fitted
        corrected = engine.summary()
        path = tmp_path / "w.json"
        save_weights(engine.weights, design.netlist, path)
        # A fresh engine + loaded weights reproduces the corrected view.
        fresh = engine_for(design)
        fresh.set_gate_weights(load_weights(path, design.netlist))
        assert fresh.summary().wns == pytest.approx(corrected.wns)
        assert fresh.summary().tns == pytest.approx(corrected.tns)

    def test_wrong_design_rejected(self, fitted):
        design, engine, _ = fitted
        from dataclasses import replace

        other = generate_design(replace(SMALL_SPEC, name="other"))
        text = weights_to_json(engine.weights, design.netlist)
        with pytest.raises(SolverError):
            weights_from_json(text, other.netlist)

    def test_structural_drift_rejected_strict(self, fitted):
        design, engine, _ = fitted
        text = weights_to_json(engine.weights, design.netlist)
        victim = design.netlist.combinational_gates()[0]
        design.netlist.remove_gate(victim)
        with pytest.raises(SolverError):
            weights_from_json(text, design.netlist, strict=True)

    def test_non_strict_drops_missing_gates(self, fitted):
        design, engine, _ = fitted
        text = weights_to_json(engine.weights, design.netlist)
        weighted = [g for g in engine.weights if g in design.netlist.gates]
        victim = weighted[0]
        design.netlist.remove_gate(victim)
        loaded = weights_from_json(text, design.netlist, strict=False)
        assert victim not in loaded
        assert len(loaded) >= len(weighted) - 1 - 5

    def test_garbage_rejected(self, fitted):
        design, *_ = fitted
        with pytest.raises(SolverError):
            weights_from_json("not json {", design.netlist)
        with pytest.raises(SolverError):
            weights_from_json('{"format": 99}', design.netlist)
