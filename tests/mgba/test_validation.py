"""Generalization-validation tests."""

import pytest

from repro.errors import SolverError
from repro.mgba.validation import (
    endpoint_split_validation,
    holdout_validation,
)


class TestHoldout:
    @pytest.fixture(scope="class")
    def report(self, medium_design):
        from tests.conftest import engine_for

        engine = engine_for(medium_design)
        return holdout_validation(engine, k_fit=8, k_eval=20)

    def test_partitions_are_disjoint_and_nonempty(self, report):
        assert report.fit_paths > 0 and report.eval_paths > 0

    def test_fit_quality_high(self, report):
        assert report.pass_ratio_fit > 0.9

    def test_generalizes_to_deeper_paths(self, report):
        """The paper's whole premise: correcting the top paths also
        corrects the paths just below them."""
        assert report.generalizes
        assert report.eval_improvement > 0.3

    def test_eval_mse_way_below_gba(self, report):
        assert report.mse_eval < 0.2 * report.mse_eval_gba

    def test_coverage_reported(self, report):
        assert 0.5 < report.gate_coverage_eval <= 1.0

    def test_k_order_enforced(self, small_engine):
        with pytest.raises(SolverError):
            holdout_validation(small_engine, k_fit=10, k_eval=10)


class TestEndpointSplit:
    @pytest.fixture(scope="class")
    def report(self, medium_design):
        from tests.conftest import engine_for

        engine = engine_for(medium_design)
        return endpoint_split_validation(engine, seed=0)

    def test_still_beats_gba_on_unseen_endpoints(self, report):
        assert report.pass_ratio_eval > report.pass_ratio_eval_gba

    def test_harder_than_holdout(self, medium_design):
        """Unseen endpoints are the harder generalization target."""
        from tests.conftest import engine_for

        engine = engine_for(medium_design)
        holdout = holdout_validation(engine, k_fit=8, k_eval=20)
        split = endpoint_split_validation(engine, seed=0)
        assert split.gate_coverage_eval <= holdout.gate_coverage_eval + 0.05

    def test_bad_fraction_rejected(self, small_engine):
        with pytest.raises(SolverError):
            endpoint_split_validation(small_engine, fit_fraction=1.0)

    def test_seed_reproducible(self, medium_design):
        from tests.conftest import engine_for

        engine = engine_for(medium_design)
        a = endpoint_split_validation(engine, seed=7)
        b = endpoint_split_validation(engine, seed=7)
        assert a == b
