"""Shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 wheel building; offline boxes that
lack `wheel` can install with `python setup.py develop` instead.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
