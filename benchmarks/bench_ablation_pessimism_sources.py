"""Ablation: where does GBA pessimism come from, and does mGBA absorb
each source?

The paper's "general" claim is that the weighting formulation absorbs
*any* graph-vs-path gap — AOCV worst depth, missing CRPR, worst slew
propagation — not just the derate part prior work addressed.  We build
three golden references of increasing fidelity and fit mGBA against
each:

1. derate-only golden (path depth + distance; no CRPR, no slew recalc);
2. + exact CRPR credit;
3. + path-specific slew propagation.

For each: the GBA pass ratio (how bad the problem is) and the mGBA pass
ratio after fitting (how much the framework absorbs).
"""

import copy


from repro.mgba.metrics import pass_ratio
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.timing.crpr import CRPRCalculator

from benchmarks.conftest import print_table

DESIGN = "D6"


class _NoCreditCRPR(CRPRCalculator):
    """A CRPR calculator that never credits (ablation 1)."""

    def credit(self, launch_ck, capture_ck) -> float:
        return 0.0


def _golden(engine, paths, with_crpr: bool, with_slew: bool):
    batch = [copy.copy(p) for p in paths]
    pba = PBAEngine(engine, recalc_slew=with_slew)
    if not with_crpr:
        pba.sta = engine  # unchanged; swap the credit source below
        original = engine.crpr
        engine.crpr = _NoCreditCRPR(engine.graph, engine.state)
        try:
            pba.analyze(batch)
        finally:
            engine.crpr = original
    else:
        pba.analyze(batch)
    return batch


def test_pessimism_source_ablation(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    paths = enumerate_worst_paths(engine.graph, engine.state, 20)

    benchmark.pedantic(
        _golden, args=(engine, paths, True, True), rounds=1, iterations=1
    )

    variants = [
        ("derate only", False, False),
        ("+ CRPR", True, False),
        ("+ slew recalc", True, True),
    ]
    rows = []
    mgba_ratios = []
    previous_pessimism = -1.0
    for label, with_crpr, with_slew in variants:
        batch = _golden(engine, paths, with_crpr, with_slew)
        problem = build_problem(batch)
        gba_ratio = pass_ratio(problem.s_gba, problem.s_pba)
        x = solve_direct(problem).x
        mgba_ratio = pass_ratio(
            problem.corrected_slacks(x), problem.s_pba
        )
        mgba_ratios.append(mgba_ratio)
        pessimism = float((problem.s_pba - problem.s_gba).mean())
        rows.append([
            label,
            f"{pessimism:.1f}",
            f"{gba_ratio*100:.2f}",
            f"{mgba_ratio*100:.2f}",
        ])
        # Each added source strictly grows the gap to golden.
        assert pessimism >= previous_pessimism - 1e-9
        previous_pessimism = pessimism
    print_table(
        f"Ablation: pessimism sources on {DESIGN} "
        f"({len(paths)} fitted paths)",
        ["golden model", "mean pessimism (ps)", "GBA pass (%)",
         "mGBA pass (%)"],
        rows,
        note=(
            "The fit absorbs every added source: mGBA pass ratio stays "
            "high as the golden gets harder — the 'general' in the "
            "paper's title."
        ),
    )
    assert all(r > 0.9 for r in mgba_ratios)
