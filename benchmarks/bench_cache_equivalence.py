"""Cache-equivalence bench: cold vs warm service runs must be identical.

The artifact cache's whole contract is *transparency* — a warm run
(every artifact served from ``.repro_cache/``) must return results
bit-identical to the cold run that populated it, and must not be
slower.  This bench drives the same query batch (``sta`` +
``pba_slacks`` + ``mgba_fit``) through two fresh
:class:`~repro.service.engine.TimingService` instances sharing one
cache directory and hard-checks:

* every deterministic result field is equal cold-vs-warm;
* the warm run recorded at least one ``cache.hit.<cls>`` for each of
  the ``sta`` / ``pba`` / ``fit`` artifact classes;
* warm wall time does not exceed cold wall time (with slack for
  timer noise on sub-second runs).

Also runnable as a script for the ``bench-smoke`` CI gate::

    python benchmarks/bench_cache_equivalence.py --check --designs D1
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.context import RunContext
from repro.obs import default_registry
from repro.service import TimingService

from benchmarks.conftest import bench_design_names, print_table

#: Artifact classes one warm (sta, pba_slacks, mgba_fit) batch must hit.
EXPECTED_HIT_CLASSES = ("sta", "pba", "fit")

#: Warm may exceed cold by this factor before we call it a regression —
#: sub-second runs are dominated by timer noise and engine build time.
WARM_SLOWDOWN_TOLERANCE = 1.25


def _query_batch(names):
    batch = []
    for name in names:
        batch.append({"op": "sta", "design": name})
        batch.append({"op": "pba_slacks", "design": name, "k": 16})
        batch.append({"op": "mgba_fit", "design": name})
    return batch


def _run_pass(names, cache_dir):
    """One fresh service over the shared cache dir; returns run facts."""
    context = RunContext.from_env(
        workers=1, backend="serial", cache_dir=cache_dir,
    )
    service = TimingService(context=context)
    registry = default_registry()
    before = {
        name: registry.counter(name).value
        for name in (
            ["cache.hit", "cache.miss"]
            + [f"cache.hit.{cls}" for cls in EXPECTED_HIT_CLASSES]
        )
    }
    start = time.perf_counter()
    outcomes = service.submit(_query_batch(names))
    wall = time.perf_counter() - start
    hits = {
        name: registry.counter(name).value - before[name]
        for name in before
    }
    return outcomes, wall, hits


def compare_cold_warm(names, cache_dir):
    """(cold outcomes, warm outcomes, cold wall, warm wall, warm hits)."""
    cold, cold_wall, _ = _run_pass(names, cache_dir)
    warm, warm_wall, warm_hits = _run_pass(names, cache_dir)
    return cold, warm, cold_wall, warm_wall, warm_hits


def equivalence_failures(cold, warm):
    """Human-readable divergences between the cold and warm passes."""
    failures = []
    for c, w in zip(cold, warm):
        label = f"{c.query.op}({c.query.design})"
        if not (c.ok and w.ok):
            failures.append(f"{label}: cold ok={c.ok}, warm ok={w.ok}")
        elif c.result != w.result:  # frozen dataclasses; seconds excluded
            failures.append(f"{label}: cold and warm results differ")
        elif not w.cached:
            failures.append(f"{label}: warm pass was not served from cache")
    return failures


def missing_hit_classes(warm_hits):
    return [
        cls for cls in EXPECTED_HIT_CLASSES
        if warm_hits.get(f"cache.hit.{cls}", 0) < 1
    ]


def test_cache_cold_vs_warm(tmp_path):
    """Cold and warm service passes are bit-identical; warm hits cache."""
    names = bench_design_names()[:1]
    cold, warm, cold_wall, warm_wall, warm_hits = compare_cold_warm(
        names, str(tmp_path / "cache")
    )
    rows = [
        [c.query.op, c.query.design,
         f"{c.seconds:.3f}", f"{w.seconds:.3f}",
         "hit" if w.cached else "MISS",
         "ok" if c.result == w.result else "DIVERGED"]
        for c, w in zip(cold, warm)
    ]
    print_table(
        f"cache cold-vs-warm ({', '.join(names)})",
        ["op", "design", "cold s", "warm s", "warm src", "equal"],
        rows,
        note=f"wall: cold {cold_wall:.2f}s, warm {warm_wall:.2f}s",
    )
    assert not equivalence_failures(cold, warm)
    assert not missing_hit_classes(warm_hits)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cache equivalence: cold vs warm service passes",
    )
    parser.add_argument(
        "--designs", default="",
        help="comma-separated subset (default: REPRO_BENCH_DESIGNS or all)",
    )
    parser.add_argument(
        "--cache-dir", default="",
        help="cache directory (default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 on divergence, missing cache hits, or a warm pass "
             "slower than the cold pass",
    )
    args = parser.parse_args(argv)
    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        or bench_design_names()
    )
    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = args.cache_dir or os.path.join(scratch, "cache")
        cold, warm, cold_wall, warm_wall, warm_hits = compare_cold_warm(
            names, cache_dir
        )
    rows = [
        [c.query.op, c.query.design,
         f"{c.seconds:.3f}", f"{w.seconds:.3f}",
         "hit" if w.cached else "MISS",
         "ok" if c.ok and w.ok and c.result == w.result else "DIVERGED"]
        for c, w in zip(cold, warm)
    ]
    print_table(
        f"cache cold-vs-warm over {len(names)} design(s)",
        ["op", "design", "cold s", "warm s", "warm src", "equal"],
        rows,
    )
    print(f"wall: cold {cold_wall:.2f}s, warm {warm_wall:.2f}s")
    failures = equivalence_failures(cold, warm)
    for cls in missing_hit_classes(warm_hits):
        failures.append(f"no cache.hit.{cls} recorded on the warm pass")
    if warm_wall > cold_wall * WARM_SLOWDOWN_TOLERANCE:
        failures.append(
            f"warm pass slower than cold: {warm_wall:.2f}s vs "
            f"{cold_wall:.2f}s (tolerance {WARM_SLOWDOWN_TOLERANCE}x)"
        )
    if failures and args.check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"warn: {failure}", file=sys.stderr)
    else:
        print("cache cold-vs-warm equivalence: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
