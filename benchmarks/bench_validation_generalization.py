"""Validation bench: does the fitted correction generalize?

Not a paper table — the experiment a production adopter runs first.
Fits on each design's top-k paths and evaluates on held-out deeper
paths and on held-out endpoints.
"""


from repro.mgba.validation import (
    endpoint_split_validation,
    holdout_validation,
)
from repro.timing.sta import STAEngine

from benchmarks.conftest import bench_design_names, print_table


def _engine(design_cache, name) -> STAEngine:
    design = design_cache(name)
    return STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )


def test_generalization(benchmark, design_cache):
    names = bench_design_names()

    benchmark.pedantic(
        holdout_validation, args=(_engine(design_cache, names[0]),),
        kwargs={"k_fit": 8, "k_eval": 20}, rounds=1, iterations=1,
    )

    rows = []
    holdout_ok = 0
    for name in names:
        engine = _engine(design_cache, name)
        holdout = holdout_validation(engine, k_fit=8, k_eval=20)
        split = endpoint_split_validation(engine, seed=0)
        holdout_ok += holdout.generalizes
        rows.append([
            name,
            f"{holdout.pass_ratio_eval_gba*100:.1f}",
            f"{holdout.pass_ratio_eval*100:.1f}",
            f"{split.pass_ratio_eval_gba*100:.1f}",
            f"{split.pass_ratio_eval*100:.1f}",
            f"{split.gate_coverage_eval*100:.0f}%",
        ])
    print_table(
        "Generalization: pass ratio on paths/endpoints NOT in the fit",
        ["design",
         "holdout GBA", "holdout mGBA",
         "ep-split GBA", "ep-split mGBA", "ep-split cover"],
        rows,
        note=(
            "holdout = deeper paths of fitted endpoints; ep-split = "
            "entirely unseen endpoints (uncovered gates stay at plain "
            "GBA).  The correction must help, never hurt, both."
        ),
    )
    assert holdout_ok == len(names)
