"""Shared benchmark fixtures.

Every table/figure bench pulls designs (and expensive intermediate
results) from the session-scoped caches here, so regenerating all
tables in one pytest run builds each design exactly once.

Environment knobs:

* ``REPRO_BENCH_DESIGNS`` — comma-separated subset (default: all ten).
* ``REPRO_BENCH_TRANSFORMS`` — closure move budget for Tables 2/5
  (default 150).
* ``REPRO_BENCH_METRICS_DIR`` — where each bench's metrics snapshot is
  written as ``BENCH_<name>.json`` (default ``bench_metrics/``; set
  empty to disable).
* ``REPRO_BENCH_HISTORY`` — the append-only bench time series every
  run extends (default ``<metrics dir>/history.jsonl``; set empty to
  disable).  Read it back with ``repro-sta bench-history``.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path

import pytest

from repro.designs.suite import build_design, design_names
from repro.mgba.flow import MGBAConfig
from repro.opt.closure import ClosureConfig
from repro.timing.sta import STAEngine


def bench_design_names() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DESIGNS", "")
    if not raw:
        return design_names()
    chosen = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = set(chosen) - set(design_names())
    if unknown:
        raise ValueError(f"unknown designs in REPRO_BENCH_DESIGNS: {unknown}")
    return chosen


def closure_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_TRANSFORMS", "150"))


#: Snapshot filenames already emitted this session.  Sanitizing node
#: names can collapse distinct parametrizations (``[a/b]`` and
#: ``[a.b]`` both sanitize to ``a_b``), so collisions get a monotonic
#: ``__N`` suffix instead of silently overwriting the earlier snapshot.
_snapshot_names: dict[str, int] = {}


def _snapshot_filename(node_name: str) -> str:
    base = re.sub(r"[^A-Za-z0-9_.-]+", "_", node_name)
    seen = _snapshot_names.get(base)
    _snapshot_names[base] = 0 if seen is None else seen + 1
    if seen is None:
        return f"BENCH_{base}.json"
    return f"BENCH_{base}__{seen + 1}.json"


def bench_fingerprint() -> str:
    """Digest of the *problem* a bench run measured.

    Covers the design subset, the closure transform budget, and the
    resolved worker count — the knobs that change what a bench's wall
    time means.  ``repro-sta bench-history`` only ever compares runs
    with the same fingerprint, so a ``D1``-only CI smoke run and a
    full ten-design sweep live in different series.
    """
    from repro.parallel.executor import resolve_workers
    from repro.service.keys import digest

    return digest([
        ",".join(bench_design_names()),
        closure_budget(),
        resolve_workers(None),
    ])


def _append_history(bench: str, seconds: float, snapshot: dict,
                    metrics_dir: str) -> None:
    """One history record per bench run (best-effort, never fatal)."""
    default_path = str(Path(metrics_dir) / "history.jsonl") \
        if metrics_dir else ""
    path = os.environ.get("REPRO_BENCH_HISTORY", default_path)
    if not path:
        return
    from repro.obs.history import (
        BenchRecord,
        append_record,
        git_sha,
        metrics_summary,
        utc_now,
    )

    try:
        append_record(path, BenchRecord(
            sha=git_sha(),
            bench=bench,
            fingerprint=bench_fingerprint(),
            seconds=round(seconds, 6),
            when=utc_now(),
            metrics=metrics_summary(snapshot),
        ))
    except OSError:
        pass  # a read-only checkout must not fail the bench itself


@pytest.fixture(autouse=True)
def bench_metrics_snapshot(request):
    """Archive each bench's metrics as ``BENCH_<name>.json``.

    The process-wide registry is cleared before the bench and dumped
    after it, so every run of the suite leaves one JSON per bench —
    solver iteration counts, timing-update histograms, etc. — tracking
    the perf trajectory across PRs.  Work done lazily inside
    session-scoped caches lands in the bench that first triggered it.
    Filenames are collision-safe: two benches whose sanitized names
    coincide get distinct numbered snapshots.  Each run also appends
    one record (wall seconds + scalar metric summary) to the bench
    history time series.
    """
    directory = os.environ.get("REPRO_BENCH_METRICS_DIR", "bench_metrics")
    if not directory and not os.environ.get("REPRO_BENCH_HISTORY"):
        yield
        return
    from repro.obs import default_registry

    registry = default_registry()
    registry.reset()
    started = time.perf_counter()
    yield
    seconds = time.perf_counter() - started
    snapshot = registry.snapshot()
    if directory:
        out_dir = Path(directory)
        out_dir.mkdir(parents=True, exist_ok=True)
        registry.save_json(out_dir / _snapshot_filename(request.node.name))
    _append_history(request.node.name, seconds, snapshot, directory)


@pytest.fixture(scope="session")
def design_cache():
    """name -> Design, built on demand, pristine (do not mutate)."""
    cache: dict = {}

    def get(name: str):
        if name not in cache:
            cache[name] = build_design(name)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def engine_cache(design_cache):
    """name -> timing-updated clean GBA engine (do not mutate)."""
    cache: dict = {}

    def get(name: str) -> STAEngine:
        if name not in cache:
            design = design_cache(name)
            engine = STAEngine(
                design.netlist, design.constraints,
                design.placement, design.sta_config,
            )
            engine.update_timing()
            cache[name] = engine
        return cache[name]

    return get


@pytest.fixture(scope="session")
def comparison_cache():
    """name -> FlowComparison (shared by the Table 2 and Table 5 benches)."""
    from repro.designs.suite import design_factory
    from repro.opt.compare import run_flow_comparison

    cache: dict = {}

    def get(name: str):
        if name not in cache:
            cache[name] = run_flow_comparison(
                name,
                design_factory(name),
                ClosureConfig(
                    max_transforms=closure_budget(),
                    mgba=MGBAConfig(seed=0),
                ),
            )
        return cache[name]

    return get


def print_table(title: str, headers: list[str], rows: list[list],
                note: str = "") -> None:
    """Uniform fixed-width table printer for all benches."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    if note:
        print(note)
