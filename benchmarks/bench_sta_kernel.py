"""Scalar-vs-vector STA kernel bench: equivalence asserted, speedup logged.

Two workloads per design, mirroring how the system actually calls
``update_timing``:

* **cold** — first full update on a fresh engine (layout build + delay
  calc + propagation), plus a **hydrated** variant where the levelized
  layout is rehydrated from the on-disk ``layout/`` store instead of
  rebuilt (see :func:`repro.timing.kernel.set_layout_disk_store`);
* **weighted loop** — the mGBA solver pattern: ``set_gate_weights``
  followed by a full update, repeated.  Weights only move the derate
  arrays, so the vector kernel's flow cache answers these with an
  arrival-only sweep — this is the speedup the paper's Fig. 5 loop
  feels.

Equivalence is hard-asserted (bit-identical arrivals/slews and equal
slack maps, here and in the CI ``bench-smoke`` gate); wall-clock
speedups are logged and recorded to ``repro.obs.history``, never
flaky-gated.

Also runnable as a script for CI::

    python -m benchmarks.bench_sta_kernel --check --iterations 4
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

import numpy as np

from repro.designs.suite import build_design
from repro.timing.sta import STAEngine

from benchmarks.conftest import bench_design_names, print_table

#: Weighted-update iterations per design (the mGBA loop depth).
DEFAULT_ITERATIONS = 6


def _engine(design, kernel: str) -> STAEngine:
    return STAEngine(
        design.netlist, design.constraints, design.placement,
        replace(design.sta_config, kernel=kernel),
    )


def _weights(netlist, round_no: int) -> dict[str, float]:
    gates = sorted(netlist.gates)
    return {
        g: 1.0 + 0.001 * ((round_no + j) % 11)
        for j, g in enumerate(gates)
    }


def _run_kernel(design, kernel: str, iterations: int):
    """(engine, cold seconds, weighted-loop seconds per iteration)."""
    engine = _engine(design, kernel)
    start = time.perf_counter()
    engine.update_timing()
    cold = time.perf_counter() - start
    start = time.perf_counter()
    for i in range(iterations):
        engine.set_gate_weights(_weights(engine.netlist, i))
        engine.update_timing()
    loop = (time.perf_counter() - start) / max(iterations, 1)
    return engine, cold, loop


def _run_hydrated(design, iterations: int):
    """(engine, hydrated-cold seconds): cold update over a warm store.

    A throwaway engine persists the layout into a temporary disk store;
    the measured engine then starts with an empty process cache and
    hydrates the structural arrays instead of re-flattening the graph.
    """
    import tempfile

    from repro.service.store import DiskStore
    from repro.timing import kernel as kernel_mod

    with tempfile.TemporaryDirectory() as tmp:
        kernel_mod.set_layout_disk_store(DiskStore(tmp))
        try:
            kernel_mod.clear_layout_cache()
            _engine(design, "vector").update_timing()  # persist only
            kernel_mod.clear_layout_cache()  # force the disk tier
            engine = _engine(design, "vector")
            start = time.perf_counter()
            engine.update_timing()
            cold = time.perf_counter() - start
            # Same weighted loop as _run_kernel, so final states are
            # comparable across the scalar/vector/hydrated variants.
            for i in range(iterations):
                engine.set_gate_weights(_weights(engine.netlist, i))
                engine.update_timing()
        finally:
            kernel_mod.set_layout_disk_store(None)
            kernel_mod.clear_layout_cache()
    return engine, cold


def _states_identical(scalar: STAEngine, vector: STAEngine) -> bool:
    ids = sorted(n.id for n in scalar.graph.live_nodes())
    if ids != sorted(n.id for n in vector.graph.live_nodes()):
        return False
    for attr in ("arrival_late", "arrival_early", "slew"):
        a = getattr(scalar.state, attr)[ids]
        b = getattr(vector.state, attr)[ids]
        if not np.array_equal(a, b):
            return False
    slacks_s = {s.name: s.slack for s in scalar.setup_slacks()}
    slacks_v = {s.name: s.slack for s in vector.setup_slacks()}
    return slacks_s == slacks_v


def compare_kernels(names, iterations: int = DEFAULT_ITERATIONS):
    """Per-design rows + divergence list for scalar vs vector kernels."""
    rows = []
    diverged = []
    for name in names:
        scalar, cold_s, loop_s = _run_kernel(
            build_design(name), "scalar", iterations
        )
        vector, cold_v, loop_v = _run_kernel(
            build_design(name), "vector", iterations
        )
        hydrated, cold_h = _run_hydrated(build_design(name), iterations)
        equal = (
            _states_identical(scalar, vector)
            and _states_identical(scalar, hydrated)
        )
        if not equal:
            diverged.append(name)
        rows.append([
            name,
            f"{cold_s * 1e3:.1f}", f"{cold_v * 1e3:.1f}",
            f"{cold_s / cold_v:.2f}x" if cold_v > 0 else "-",
            f"{cold_h * 1e3:.1f}",
            f"{cold_s / cold_h:.2f}x" if cold_h > 0 else "-",
            f"{loop_s * 1e3:.1f}", f"{loop_v * 1e3:.1f}",
            f"{loop_s / loop_v:.2f}x" if loop_v > 0 else "-",
            "ok" if equal else "DIVERGED",
        ])
    return rows, diverged


_HEADERS = [
    "design", "cold scalar ms", "cold vector ms", "cold speedup",
    "cold hydr ms", "hydr speedup",
    "loop scalar ms", "loop vector ms", "loop speedup", "equal",
]


def test_sta_kernel_scalar_vs_vector(benchmark):
    """Bit-equality asserted on every design; speedups logged."""
    names = bench_design_names()
    largest = names[-1]

    def _weighted_loop():
        _run_kernel(build_design(largest), "vector", DEFAULT_ITERATIONS)

    benchmark.pedantic(_weighted_loop, rounds=1, iterations=1)

    rows, diverged = compare_kernels(names)
    print_table(
        "STA kernel: scalar vs vector "
        f"(weighted loop x{DEFAULT_ITERATIONS})",
        _HEADERS, rows,
        note=(
            "cold = first full update; hydr = cold update with the "
            "layout hydrated from the disk store; loop = "
            "set_gate_weights + update_timing per iteration (the mGBA "
            "pattern, where the vector kernel's flow cache applies).  "
            "Speedups are logged, not asserted; bit-equality is "
            "asserted."
        ),
    )
    assert not diverged


def test_sta_layout_cold_hydrate(benchmark):
    """Disk-hydrated cold start on the largest design, bit-checked.

    Observes ``kernel.layout_build_seconds`` (the throwaway warm build)
    and ``kernel.layout_hydrate_seconds`` so the conftest metrics
    snapshot lands both in ``bench_metrics/history.jsonl``.
    """
    largest = bench_design_names()[-1]

    def _hydrated_cold():
        return _run_hydrated(build_design(largest), 0)

    engine, _cold = benchmark.pedantic(
        _hydrated_cold, rounds=1, iterations=1
    )
    scalar, _, _ = _run_kernel(build_design(largest), "scalar", 0)
    assert _states_identical(scalar, engine)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="STA kernel bench: scalar vs vector equivalence + speed",
    )
    parser.add_argument("--iterations", type=int, default=DEFAULT_ITERATIONS)
    parser.add_argument(
        "--designs", default="",
        help="comma-separated subset (default: REPRO_BENCH_DESIGNS or all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the kernels' results diverge",
    )
    args = parser.parse_args(argv)
    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        or bench_design_names()
    )
    rows, diverged = compare_kernels(names, args.iterations)
    print_table(
        f"STA kernel: scalar vs vector (weighted loop x{args.iterations})",
        _HEADERS, rows,
    )
    if diverged:
        print(f"FAIL: kernel divergence on {diverged}", file=sys.stderr)
        return 1
    print("scalar-vs-vector equivalence: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
