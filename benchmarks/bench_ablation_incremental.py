"""Ablation: incremental timing update vs full re-analysis.

Fig. 5's left side leans on "incremental timing update techniques" —
re-running full STA after each of thousands of transforms would drown
the flow.  This bench replays a transform sequence twice, once with the
cone-invalidation incremental engine and once with full updates, checks
they agree exactly, and reports the speedup.
"""

import time

import pytest

from repro.designs.suite import build_design
from repro.netlist.edit import resize_gate
from repro.timing.sta import STAEngine

from benchmarks.conftest import print_table

DESIGN = "D6"
MOVES = 60


def _fresh():
    design = build_design(DESIGN)
    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    engine.update_timing()
    return design, engine


def _move_plan(design):
    gates = [
        g for g in design.netlist.combinational_gates()
        if not g.startswith("ckbuf")
    ][:MOVES]
    return [(g, i % 2 == 0) for i, g in enumerate(gates)]


def test_incremental_vs_full(benchmark):
    design_inc, engine_inc = _fresh()
    plan = _move_plan(design_inc)

    start = time.perf_counter()
    visited_total = 0
    for gate, up in plan:
        change = resize_gate(design_inc.netlist, gate, up=up)
        if change is not None:
            from repro.timing.incremental import apply_change_incremental

            visited_total += apply_change_incremental(engine_inc, change)
    incremental_seconds = time.perf_counter() - start
    incremental_slacks = {
        s.name: s.slack for s in engine_inc.setup_slacks()
    }

    design_full, engine_full = _fresh()
    start = time.perf_counter()
    for gate, up in plan:
        change = resize_gate(design_full.netlist, gate, up=up)
        if change is not None:
            for gate_name in change.gates:
                from repro.timing.incremental import refresh_gate_arcs

                refresh_gate_arcs(engine_full.graph, gate_name)
            engine_full._setup_slack_cache = None
            engine_full.update_timing()
    full_seconds = time.perf_counter() - start
    full_slacks = {s.name: s.slack for s in engine_full.setup_slacks()}

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Exactness first: incremental must equal full.
    for name, value in full_slacks.items():
        assert incremental_slacks[name] == pytest.approx(value, abs=1e-6)

    nodes = engine_inc.graph.node_count()
    speedup = full_seconds / incremental_seconds
    print_table(
        f"Ablation: incremental vs full timing update on {DESIGN} "
        f"({len(plan)} resizes, {nodes} timing nodes)",
        ["strategy", "seconds", "nodes touched/move"],
        [
            ["full re-analysis", f"{full_seconds:.2f}", nodes],
            ["incremental", f"{incremental_seconds:.2f}",
             f"{visited_total / max(len(plan), 1):.0f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
        note=(
            "Identical slacks (asserted to 1e-6 ps).  The speedup is "
            "what makes a transform loop with thousands of trials "
            "feasible — the paper's 'incremental timing update "
            "techniques [18]'."
        ),
    )
    assert speedup > 2.0
