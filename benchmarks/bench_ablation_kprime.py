"""Ablation: k' — paths kept per endpoint (§3.2's k' = 20).

Small k' risks missing gates and overfitting the very worst paths;
large k' costs enumeration/PBA/fit time for diminishing accuracy.  The
sweep evaluates each fit on a fixed *evaluation pool* (k'=40) so bigger
training sets cannot grade their own homework.
"""

import pytest

from repro.mgba.metrics import pass_ratio
from repro.mgba.problem import build_problem
from repro.mgba.selection import gate_coverage, path_pool_gates, per_endpoint_topk
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import print_table

DESIGN = "D6"
K_VALUES = (1, 2, 5, 10, 20, 40)
EVAL_K = 40


def test_kprime_sweep(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    pool = enumerate_worst_paths(engine.graph, engine.state, EVAL_K)
    PBAEngine(engine).analyze(pool)
    evaluation = build_problem(pool)
    universe = path_pool_gates(pool)

    def fit_and_eval(k):
        selected = per_endpoint_topk(pool, k)
        problem = build_problem(selected)
        x = solve_direct(problem).x
        weights = dict(zip(problem.gates, x))
        eval_x = [weights.get(g, 0.0) for g in evaluation.gates]
        corrected = evaluation.corrected_slacks(eval_x)
        ratio = pass_ratio(corrected, evaluation.s_pba)
        coverage = gate_coverage(selected, universe)[0]
        return len(selected), coverage, ratio

    benchmark.pedantic(fit_and_eval, args=(20,), rounds=1, iterations=1)

    rows = []
    ratios = []
    for k in K_VALUES:
        count, coverage, ratio = fit_and_eval(k)
        ratios.append(ratio)
        rows.append([
            k, count, f"{coverage*100:.1f}%", f"{ratio*100:.2f}",
        ])
    print_table(
        f"Ablation: k' (paths per endpoint) on {DESIGN}, "
        f"evaluated on the k'={EVAL_K} pool",
        ["k'", "paths fitted", "gate coverage", "pool pass (%)"],
        rows,
        note=(
            "Pass ratio rises with coverage and saturates near the "
            "paper's k' = 20; k'=1 already beats raw GBA massively."
        ),
    )
    gba_ratio = pass_ratio(evaluation.s_gba, evaluation.s_pba)
    assert ratios[0] > gba_ratio            # even k'=1 helps
    assert max(ratios) == pytest.approx(ratios[-1], abs=0.06)
    assert ratios[-1] > 0.9