"""Explain-layer bench: pessimism accounting per design, trended.

Runs the slack-provenance layer over each bench design twice — on the
clean GBA engine and again after a direct-solver mGBA fit — and prints
the accounting (total pessimism, removed by the fit, residual).  The
``explain.pessimism_removed`` / ``explain.pessimism_residual`` gauges
the run records flow through the per-bench metrics snapshot into
``bench_metrics/history.jsonl``, so ``repro-sta bench-history`` trends
*attribution* drift (a fit suddenly removing less pessimism) alongside
runtime drift.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.context import RunContext
from repro.timing.explain import explain_design

from benchmarks.conftest import bench_design_names, print_table


@pytest.mark.parametrize("name", bench_design_names())
def test_bench_explain_accounting(name, design_cache, capsys):
    design = design_cache(name)
    ctx = RunContext.from_env(
        workers=1, backend="serial", cache=False, solver="direct",
    )
    engine = api.make_engine(design, ctx)

    start = time.perf_counter()
    clean = explain_design(engine, top_k=5)
    clean_seconds = time.perf_counter() - start

    api.fit(engine, ctx)  # installs the weights (apply=True default)
    start = time.perf_counter()
    fitted = explain_design(engine, top_k=5)
    fitted_seconds = time.perf_counter() - start

    # A clean engine has nothing removed — bitwise, by construction.
    assert clean.summary.removed == 0.0
    # The fitted engine attributes its correction (how much is a QoR
    # question for bench-history to trend, never a flaky gate here).
    assert fitted.summary.endpoints == clean.summary.endpoints

    with capsys.disabled():
        print_table(
            f"explain accounting: {name}",
            ["engine", "endpoints", "arcs", "pessimism(ps)",
             "removed(ps)", "residual(ps)", "seconds"],
            [
                ["clean", clean.summary.endpoints, clean.summary.arcs,
                 f"{clean.summary.pessimism:.1f}",
                 f"{clean.summary.removed:.1f}",
                 f"{clean.summary.residual:.1f}",
                 f"{clean_seconds:.3f}"],
                ["fitted", fitted.summary.endpoints, fitted.summary.arcs,
                 f"{fitted.summary.pessimism:.1f}",
                 f"{fitted.summary.removed:.1f}",
                 f"{fitted.summary.residual:.1f}",
                 f"{fitted_seconds:.3f}"],
            ],
            note="gauges explain.pessimism_removed/residual -> history",
        )
