"""Ablation: AOCV-table golden vs SSTA-lite (RSS) golden.

The paper positions AOCV as the practical middle ground between flat
derating and SSTA.  This bench fits mGBA against both golden variation
models — the paper's per-path table factor and a root-sum-square
per-stage accumulation sharing the same characterization — and shows
the framework is agnostic: correlation lands high against either.
"""

import copy


from repro.mgba.metrics import pass_ratio
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import print_table

DESIGN = "D5"


def test_variation_model_ablation(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    base_paths = enumerate_worst_paths(engine.graph, engine.state, 20)

    def fit(variation):
        paths = [copy.copy(p) for p in base_paths]
        PBAEngine(engine, variation=variation).analyze(paths)
        problem = build_problem(paths)
        x = solve_direct(problem).x
        corrected = problem.corrected_slacks(x)
        pessimism = problem.s_pba - problem.s_gba
        return {
            "gba_pass": pass_ratio(problem.s_gba, problem.s_pba),
            "mgba_pass": pass_ratio(corrected, problem.s_pba),
            "mean_pessimism": float(pessimism.mean()),
            "negative_pessimism": float((pessimism < -1e-9).mean()),
        }

    benchmark.pedantic(fit, args=("rss",), rounds=1, iterations=1)

    rows = []
    results = {}
    for variation, label in (("table", "AOCV table (paper)"),
                             ("rss", "SSTA-lite RSS")):
        outcome = fit(variation)
        results[variation] = outcome
        rows.append([
            label,
            f"{outcome['mean_pessimism']:.1f}",
            f"{outcome['negative_pessimism']*100:.1f}%",
            f"{outcome['gba_pass']*100:.2f}",
            f"{outcome['mgba_pass']*100:.2f}",
        ])
    print_table(
        f"Ablation: golden variation model on {DESIGN} "
        f"({len(base_paths)} paths)",
        ["golden model", "mean pessimism (ps)", "gba>golden paths",
         "GBA pass (%)", "mGBA pass (%)"],
        rows,
        note=(
            "The fit is model-agnostic: high correlation against both "
            "goldens, including RSS paths where AOCV over-credits "
            "cancellation (negative pessimism, absorbed by weights "
            "above 1)."
        ),
    )
    assert results["table"]["mgba_pass"] > 0.95
    assert results["rss"]["mgba_pass"] > 0.9
    # The table golden is one-sided by construction; RSS need not be.
    assert results["table"]["negative_pessimism"] == 0.0
