"""Serve-path observability smoke: scrape, flight dump, verb labels.

Drives a real ``TimingService`` through the JSONL ``serve`` loop —
query traffic, one cache-warm repeat, the control verbs, and one
deliberately failing request — with the OpenMetrics scrape endpoint
live, then hard-checks the whole observability surface:

* the scraped exposition parses (``# EOF`` terminated) and carries a
  ``verb``-labeled ``service_request_latency`` series for **every**
  verb in the registry (the drift guarantee);
* the error-path exit wrote a schema-versioned flight dump whose
  request window holds the induced failure;
* the committed ``slo/default.json`` spec evaluates over that dump
  (the advisory CI gate replays the same file).

Artifacts land in ``bench_metrics/`` (``openmetrics.txt``,
``flight_serve.json``) so CI uploads them next to the other bench
outputs.  Run standalone::

    python benchmarks/bench_serve_obs.py --check
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import urllib.request
from pathlib import Path

from repro.context import RunContext
from repro.obs.expo import start_metrics_server
from repro.obs.flight import default_flight_recorder, load_flight
from repro.service import TimingService, serve
from repro.service.registry import VERBS

DESIGN = os.environ.get("REPRO_BENCH_DESIGNS", "D1").split(",")[0].strip()

#: The serve session: queries, a cache-warm repeat, control verbs, and
#: one request that must fail (to exercise the flight dump path).
REQUESTS = (
    {"id": 1, "op": "sta", "design": DESIGN},
    {"id": 2, "op": "sta", "design": DESIGN},          # cache hit
    {"id": 3, "op": "pba_slacks", "design": DESIGN, "k": 8},
    {"id": 4, "op": "stats"},
    {"id": 5, "op": "health"},
    {"id": 6, "op": "metrics_export"},
    {"id": 7, "op": "sta", "design": "no_such_design"},  # induced error
)


def run_session(metrics_dir: Path) -> "tuple[list[str], dict]":
    """Run the serve session; returns (failures, summary row data)."""
    failures: "list[str]" = []
    metrics_dir.mkdir(parents=True, exist_ok=True)
    flight_path = metrics_dir / "flight_serve.json"
    exposition_path = metrics_dir / "openmetrics.txt"
    default_flight_recorder().clear()

    service = TimingService(context=RunContext.from_env(
        workers=1, backend="serial", cache=False,
    ))
    server = start_metrics_server(port=0, health_fn=service.health)
    try:
        in_stream = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in REQUESTS)
        )
        out_stream = io.StringIO()
        stats = serve(service, in_stream, out_stream,
                      flight_dump=flight_path)
        # Scrape while the endpoint is still up, as Prometheus would.
        exposition = urllib.request.urlopen(
            server.url, timeout=10
        ).read().decode()
    finally:
        server.close()
    exposition_path.write_text(exposition)

    responses = [
        json.loads(line) for line in out_stream.getvalue().splitlines()
    ]
    if stats.served != len(REQUESTS):
        failures.append(
            f"served {stats.served} of {len(REQUESTS)} requests"
        )
    if stats.errors != 1:
        failures.append(f"expected exactly 1 error, got {stats.errors}")
    if sum(1 for r in responses if not r.get("ok")) != 1:
        failures.append("response stream disagrees on the error count")

    # --- exposition checks -------------------------------------------
    if not exposition.endswith("# EOF\n"):
        failures.append("exposition is not # EOF terminated")
    for row in VERBS:
        needle = f'service_request_latency_count{{verb="{row.op}"}}'
        if needle not in exposition:
            failures.append(
                f"verb {row.op!r} missing from the scraped exposition"
            )
    if 'service_requests_total{verb="sta"} 3' not in exposition:
        failures.append("sta request counter did not reach 3")
    if 'service_request_errors_total{verb="sta"} 1' not in exposition:
        failures.append("induced sta error not counted")

    # --- flight dump checks ------------------------------------------
    dump = load_flight(flight_path)
    if dump is None:
        failures.append(f"no flight dump written to {flight_path}")
    else:
        if dump.get("schema_version") != 1:
            failures.append(
                f"flight schema_version {dump.get('schema_version')!r}"
            )
        window = dump.get("requests") or []
        if not any(not r.get("ok") for r in window):
            failures.append("flight window lost the failing request")
        if not dump.get("errors"):
            failures.append("flight dump has no error records")

    summary = {
        "served": stats.served,
        "errors": stats.errors,
        "exposition_lines": len(exposition.splitlines()),
        "flight_requests": len((dump or {}).get("requests") or []),
        "by_verb": {
            op: served for op, served, _errors in stats.by_verb if served
        },
    }
    return failures, summary


def check_default_slo(metrics_dir: Path) -> "list[str]":
    """Replay the committed default spec over the session's dump."""
    from repro.obs.slo import evaluate_slo, format_slo_report, load_slo_spec

    spec_path = Path(__file__).resolve().parent.parent / "slo" \
        / "default.json"
    spec = load_slo_spec(spec_path)
    dump = load_flight(metrics_dir / "flight_serve.json") or {}
    report = evaluate_slo(spec, dump.get("requests") or [])
    print()
    print(format_slo_report(report))
    # Advisory by design: the CI step that runs this is
    # continue-on-error, so a violation informs without gating.
    return [
        f"SLO violation: {v.objective.describe()} "
        f"(actual {v.actual:.4g})"
        for v in report.violations
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serve-path observability smoke: scrape endpoint, "
                    "flight dump, per-verb labels",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any observability invariant fails",
    )
    parser.add_argument(
        "--slo", action="store_true",
        help="also evaluate slo/default.json over the session's "
             "flight dump (violations are reported, never fatal)",
    )
    parser.add_argument(
        "--metrics-dir", default="bench_metrics",
        help="artifact directory (default: bench_metrics)",
    )
    args = parser.parse_args(argv)
    metrics_dir = Path(args.metrics_dir)
    failures, summary = run_session(metrics_dir)
    print(f"serve-path observability smoke on {DESIGN}:")
    print(f"  served:            {summary['served']} "
          f"({summary['errors']} induced error)")
    print(f"  exposition:        {summary['exposition_lines']} lines "
          f"-> {metrics_dir / 'openmetrics.txt'}")
    print(f"  flight window:     {summary['flight_requests']} requests "
          f"-> {metrics_dir / 'flight_serve.json'}")
    print(f"  traffic by verb:   {summary['by_verb']}")
    if args.slo:
        for warning in check_default_slo(metrics_dir):
            print(f"warn: {warning}", file=sys.stderr)
    if failures and args.check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    for failure in failures:
        print(f"warn: {failure}", file=sys.stderr)
    if not failures:
        print("serve-path observability invariants: OK")
    return 0


def test_serve_observability(tmp_path):
    """Pytest entry: the full smoke must hold on a temp artifact dir."""
    failures, _summary = run_session(tmp_path)
    assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
