"""Table 4: accuracy and speed of the optimization solvers.

Paper (industrial designs, C++):

* GD  + w/o RS : accuracy 2.97e-3 avg, 1.00x (baseline)
* SCG + w/o RS : accuracy 2.45e-3 avg, 2.71x faster
* SCG + RS     : accuracy 1.99e-3 avg, 13.82x faster

Shape to reproduce: all three at similar (small) mse; SCG beats GD;
SCG+RS at least matches SCG and wins by growing margins as the problem
grows.  Problems here use k' = 100 paths/endpoint so the full-gradient
cost actually bites GD, as it does at industrial scale.
"""

import time


from repro.mgba.metrics import mse
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_gd, solve_scg, solve_with_row_sampling
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import bench_design_names, print_table

K_PER_ENDPOINT = 100

PAPER_AVG = {"gd": (2.97, 1.00), "scg": (2.45, 2.71), "scg+rs": (1.99, 13.82)}


def _problem_for(engine):
    paths = enumerate_worst_paths(
        engine.graph, engine.state, K_PER_ENDPOINT
    )
    PBAEngine(engine).analyze(paths)
    return build_problem(paths)


def _run(problem, solver):
    start = time.perf_counter()
    if solver == "gd":
        result = solve_gd(problem)
    elif solver == "scg":
        result = solve_scg(problem, seed=0)
    else:
        result = solve_with_row_sampling(problem, seed=0)
    elapsed = time.perf_counter() - start
    accuracy = mse(problem.corrected_slacks(result.x), problem.s_pba)
    return accuracy, elapsed


def test_table4_solver_race(benchmark, engine_cache):
    names = bench_design_names()
    rows = []
    totals = {"gd": [0.0, 0.0], "scg": [0.0, 0.0], "scg+rs": [0.0, 0.0]}
    gd_total = 0.0
    problems = {}
    for name in names:
        problems[name] = _problem_for(engine_cache(name))

    # The benchmarked kernel: one SCG+RS solve on the first design.
    benchmark.pedantic(
        solve_with_row_sampling, args=(problems[names[0]],),
        kwargs={"seed": 0}, rounds=1, iterations=1,
    )

    for name in names:
        problem = problems[name]
        row = [name, f"{problem.num_paths}x{problem.num_gates}"]
        gd_time = None
        for solver in ("gd", "scg", "scg+rs"):
            accuracy, elapsed = _run(problem, solver)
            if solver == "gd":
                gd_time = elapsed
                gd_total += elapsed
            speedup = gd_time / elapsed if elapsed > 0 else float("inf")
            totals[solver][0] += accuracy
            totals[solver][1] += speedup
            row += [f"{accuracy*1e3:.3f}", f"{elapsed:.2f}",
                    f"{speedup:.2f}x"]
        rows.append(row)
    n = len(names)
    avg = ["Avg.", ""]
    measured = {}
    for solver in ("gd", "scg", "scg+rs"):
        acc = totals[solver][0] / n
        spd = totals[solver][1] / n
        measured[solver] = spd
        avg += [f"{acc*1e3:.3f}", "", f"{spd:.2f}x"]
    rows.append(avg)
    print_table(
        "Table 4: solver accuracy (mse x1e-3) and speed "
        f"(k'={K_PER_ENDPOINT} paths/endpoint)",
        ["design", "m x n",
         "GD acc", "GD t(s)", "GD spd",
         "SCG acc", "SCG t(s)", "SCG spd",
         "RS acc", "RS t(s)", "RS spd"],
        rows,
        note=(
            "Paper averages: GD 2.97/1.00x, SCG 2.45/2.71x, "
            "SCG+RS 1.99/13.82x.  Absolute times differ (Python vs C++, "
            "scaled designs); the ordering GD < SCG <= SCG+RS is the "
            "reproduced claim and fully emerges at scale (next table)."
        ),
    )
    # The speedup ordering only emerges once the full gradient actually
    # bites GD.  On a smoke-sized subset (e.g. CI's REPRO_BENCH_DESIGNS=D1)
    # the race is noise-dominated, so log it instead of flaky-gating.
    if gd_total >= 1.0:
        assert measured["scg"] > 1.5      # SCG clearly beats GD
        assert measured["scg+rs"] > 2.0
    else:
        print(
            f"speed assertions skipped: GD total {gd_total:.2f}s — "
            "problems too small to race; speedups logged above"
        )


def test_table4_speedup_scaling(benchmark, engine_cache):
    """Row-sampling's edge grows with problem size.

    The paper's 13.82x is measured at m ~ 1e6-ish rows; at our default
    scale SCG and SCG+RS are close.  Sweeping k' on one design shows
    the trend: RS's speedup over GD grows with m and overtakes SCG's,
    heading toward the paper's regime.
    """
    engine = engine_cache("D8")
    rows = []
    rs_speedups = []
    scg_speedups = []
    for k in (20, 100, 300):
        paths = enumerate_worst_paths(engine.graph, engine.state, k)
        PBAEngine(engine).analyze(paths)
        problem = build_problem(paths)
        _, gd_time = _run(problem, "gd")
        _, scg_time = _run(problem, "scg")
        _, rs_time = _run(problem, "scg+rs")
        scg_speedups.append(gd_time / scg_time)
        rs_speedups.append(gd_time / rs_time)
        rows.append([
            k, problem.num_paths, f"{gd_time:.2f}",
            f"{gd_time/scg_time:.1f}x", f"{gd_time/rs_time:.1f}x",
        ])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print_table(
        "Table 4 (scaling): speedup over GD vs problem size (design D8)",
        ["k'", "m (paths)", "GD t(s)", "SCG speedup", "RS speedup"],
        rows,
        note=(
            "RS's advantage grows with m: at the largest size it "
            "matches or beats SCG, extrapolating to the paper's 13.82x "
            "at industrial path counts."
        ),
    )
    assert rs_speedups[-1] > rs_speedups[0]
    assert rs_speedups[-1] >= 0.9 * scg_speedups[-1]
    assert rs_speedups[-1] > 5.0


def test_table4_convergence_curves(benchmark, engine_cache):
    """Objective-vs-iteration curves with a correct x-axis.

    ``SolverResult.history`` is sampled every ``objective_every``
    iterations (SCG) or per round (RS), so plotting it against
    ``range(len(history))`` misstates convergence speed by the sampling
    stride; ``history_iters`` carries the true iteration index of each
    sample.
    """
    engine = engine_cache(bench_design_names()[0])
    problem = _problem_for(engine)

    benchmark.pedantic(
        solve_scg, args=(problem,), kwargs={"seed": 0},
        rounds=1, iterations=1,
    )

    results = {
        "gd": solve_gd(problem),
        "scg": solve_scg(problem, seed=0),
        "scg+rs": solve_with_row_sampling(problem, seed=0),
    }
    rows = []
    for name, result in results.items():
        curve = result.convergence_curve()
        assert len(result.history) == len(result.history_iters)
        assert result.history_iters == sorted(result.history_iters)
        # Down-sample to ~6 points per solver for the table.
        stride = max(1, len(curve) // 6)
        for iteration, objective in curve[::stride]:
            rows.append([name, iteration, f"{objective:.4e}"])
    # SCG's samples sit on the objective_every grid, not 0,1,2,...
    scg_iters = results["scg"].history_iters
    assert scg_iters and scg_iters[0] == 25 and scg_iters[1] == 50
    print_table(
        "Table 4 (convergence): objective vs true iteration index",
        ["solver", "iteration", "objective"],
        rows,
        note="x-axis from SolverResult.history_iters (sampled, not 1:1).",
    )
