"""Table 2: QoR improvement of the closure flow with mGBA embedded.

Paper averages (mGBA flow vs GBA flow, positive = better):
WNS +1.20%, TNS +0.65%, area -5.58%, leakage -14.77%, buffers -4.84%.
Occasional small WNS/TNS degradations (e.g. D2) are expected — the less
pessimistic flow legitimately stops earlier.

Shape to reproduce: consistent area/leakage savings with sign-off
timing essentially preserved.  WNS/TNS percentages are judged at
sign-off (golden PBA), exactly as a tapeout would.
"""


from benchmarks.conftest import bench_design_names, print_table


def test_table2_qor_improvement(benchmark, comparison_cache):
    names = bench_design_names()

    benchmark.pedantic(
        comparison_cache, args=(names[0],), rounds=1, iterations=1
    )

    rows = []
    sums = {"wns": 0.0, "tns": 0.0, "area": 0.0, "leakage": 0.0,
            "buffer": 0.0}
    for name in names:
        comparison = comparison_cache(name)
        gains = comparison.qor_improvement()
        for key in sums:
            sums[key] += gains[key]
        rows.append([
            name,
            f"{gains['wns']:+.2f}",
            f"{gains['tns']:+.2f}",
            f"{gains['area']:+.2f}",
            f"{gains['leakage']:+.2f}",
            f"{gains['buffer']:+.2f}",
        ])
    n = len(names)
    rows.append(
        ["Avg."] + [f"{sums[k]/n:+.2f}"
                    for k in ("wns", "tns", "area", "leakage", "buffer")]
    )
    print_table(
        "Table 2: QoR improvement (%) of mGBA-driven closure over "
        "GBA-driven closure",
        ["design", "WNS(%)", "TNS(%)", "area(%)", "leakage(%)",
         "buffer(%)"],
        rows,
        note=(
            "Paper averages: WNS +1.20, TNS +0.65, area +5.58, "
            "leakage +14.77, buffer +4.84.  WNS/TNS measured at "
            "sign-off (golden PBA)."
        ),
    )

    assert sums["area"] / n > 0.0, "mGBA flow should save area on average"
    assert sums["leakage"] / n > 0.0, "mGBA flow should save leakage"
    # Sign-off timing must not collapse: average WNS change bounded.
    assert sums["wns"] / n > -25.0
