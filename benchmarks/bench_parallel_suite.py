"""D-suite fan-out bench: serial vs parallel design evaluation.

The coarsest parallel axis in the system — each design's build + STA +
mGBA fit is independent — fanned across process workers by
:func:`repro.parallel.evaluate_suite`.  Two claims are exercised:

* **equivalence** (hard-asserted, here and by the ``bench-smoke`` CI
  gate): every deterministic field of every per-design report is
  bit-identical between the serial and parallel runs;
* **speedup** (logged, never flaky-gated): on a multi-core runner the
  process backend should beat serial by > 1.5x; on a single-core box
  (or with ``REPRO_BENCH_DESIGNS=D1``) process overhead wins instead,
  which is exactly the tradeoff ``docs/parallelism.md`` documents.

Also runnable as a script for CI::

    python benchmarks/bench_parallel_suite.py --check --workers 4
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.parallel import SerialExecutor, get_executor
from repro.service.suite import evaluate_suite

from benchmarks.conftest import bench_design_names, print_table

#: mGBA knobs kept small so the bench stays smoke-test sized.
K_PER_ENDPOINT = 10


def _run_suite(names, executor):
    start = time.perf_counter()
    reports = evaluate_suite(
        names, mgba=True, k_per_endpoint=K_PER_ENDPOINT, seed=0,
        executor=executor,
    )
    return reports, time.perf_counter() - start


def compare_serial_parallel(names, workers: int, backend: str = "process"):
    """(serial reports, parallel reports, table rows, wall clocks)."""
    serial, serial_wall = _run_suite(names, SerialExecutor())
    parallel, parallel_wall = _run_suite(names, get_executor(workers, backend))
    rows = []
    for s, p in zip(serial, parallel):
        rows.append([
            s.name, s.endpoints, s.violations,
            f"{s.pass_ratio_gba:.2%}", f"{s.pass_ratio_mgba:.2%}",
            f"{s.seconds:.2f}", f"{p.seconds:.2f}",
            "ok" if s.comparable() == p.comparable() else "DIVERGED",
        ])
    return serial, parallel, rows, (serial_wall, parallel_wall)


def divergences(serial, parallel):
    """Names of designs whose deterministic fields differ."""
    return [
        s.name for s, p in zip(serial, parallel)
        if s.comparable() != p.comparable()
    ]


def test_parallel_suite_fanout(benchmark):
    """Serial vs process fan-out over the suite: identical, speedup logged."""
    names = bench_design_names()
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

    benchmark.pedantic(
        evaluate_suite, args=(names[:1],),
        kwargs={"mgba": True, "k_per_endpoint": K_PER_ENDPOINT,
                "executor": SerialExecutor()},
        rounds=1, iterations=1,
    )

    serial, parallel, rows, (serial_wall, parallel_wall) = \
        compare_serial_parallel(names, workers)
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    print_table(
        f"D-suite fan-out: serial vs process x{workers} "
        f"(k'={K_PER_ENDPOINT})",
        ["design", "endpoints", "viol",
         "pass GBA", "pass mGBA", "serial s", "parallel s", "equal"],
        rows,
        note=(
            f"wall: serial {serial_wall:.2f}s, parallel {parallel_wall:.2f}s "
            f"-> speedup {speedup:.2f}x over {len(names)} design(s) "
            f"({os.cpu_count()} CPUs).  Speedup is logged, not asserted; "
            f"bit-equality is asserted."
        ),
    )
    assert not divergences(serial, parallel)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="D-suite fan-out: serial vs parallel evaluation",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--backend", default="process",
                        choices=["thread", "process"])
    parser.add_argument(
        "--designs", default="",
        help="comma-separated subset (default: REPRO_BENCH_DESIGNS or all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when serial and parallel results diverge",
    )
    args = parser.parse_args(argv)
    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        or bench_design_names()
    )
    serial, parallel, rows, (serial_wall, parallel_wall) = \
        compare_serial_parallel(names, args.workers, args.backend)
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    print_table(
        f"D-suite fan-out: serial vs {args.backend} x{args.workers}",
        ["design", "endpoints", "viol",
         "pass GBA", "pass mGBA", "serial s", "parallel s", "equal"],
        rows,
    )
    print(
        f"wall: serial {serial_wall:.2f}s, parallel {parallel_wall:.2f}s, "
        f"speedup {speedup:.2f}x ({os.cpu_count()} CPUs)"
    )
    bad = divergences(serial, parallel)
    if bad:
        print(f"FAIL: serial-vs-parallel divergence on {bad}",
              file=sys.stderr)
        return 1
    print("serial-vs-parallel equivalence: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
