"""What-if bench: parallel candidate evaluation must match sequential.

The what-if API's contract is **worker transparency** — evaluating K
candidate edit-lists chunked across N workers (each on a private
engine clone) must return results bit-identical to a sequential
apply → incremental update → revert loop on one engine.  This bench
builds a deterministic candidate list per design (resizes, VT swaps,
and a buffer insertion over the first few combinational gates/nets),
runs it through :func:`repro.opt.whatif.evaluate_what_if` serially and
with a thread fan-out, and hard-checks:

* every frozen :class:`~repro.opt.whatif.CandidateResult` is equal
  (``==`` excludes wall time) between the two passes;
* the min-period search returns the identical
  :class:`~repro.opt.whatif.MinPeriodResult` at any worker count
  (trivially — it is worker-independent by construction — but gated
  so a future parallel implementation cannot drift);
* the parallel pass actually fanned out (``whatif.chunks`` > 1).

Also runnable as a script for the ``bench-smoke`` CI gate::

    python benchmarks/bench_whatif.py --check --designs D1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import api
from repro.context import RunContext
from repro.obs import default_registry
from repro.opt.whatif import evaluate_what_if, min_period_on_engine

from benchmarks.conftest import bench_design_names, print_table

#: Candidates generated per design (kept small: the bench gates
#: equivalence, not throughput; raise locally to measure speedup).
CANDIDATES_PER_DESIGN = 12

#: Workers for the parallel pass.
PARALLEL_WORKERS = 4


def build_candidates(design_name: str) -> "list[list[dict]]":
    """A deterministic candidate list over one design's content.

    Derived entirely from the design (gate/net iteration order is
    insertion order, which is deterministic per seed), never from
    randomness or wall clock — the same list on every run and in
    every worker.
    """
    engine = api.make_engine(design_name)
    netlist = engine.netlist
    gates = [
        g for g in netlist.gates
        if not netlist.cell_of(g).is_buffer
    ]
    nets = [
        n for n in netlist.nets
        if netlist.net_driver(n) is not None
        and netlist.net_loads(n)
        and not any(r.is_port for r in netlist.net_loads(n))
    ]
    candidates: "list[list[dict]]" = []
    for index in range(CANDIDATES_PER_DESIGN):
        gate = gates[index % len(gates)]
        if index % 4 == 3 and nets:
            candidates.append([{
                "kind": "insert_buffer",
                "net": nets[index % len(nets)],
                "buffer_cell": "BUF_X2",
            }])
        elif index % 4 == 2:
            candidates.append([
                {"kind": "resize", "gate": gate, "up": True},
                {"kind": "resize",
                 "gate": gates[(index + 1) % len(gates)], "up": False},
            ])
        else:
            candidates.append(
                [{"kind": "resize", "gate": gate, "up": index % 2 == 0}]
            )
    return candidates


def run_design(design_name: str):
    """(serial result, parallel result, serial s, parallel s, chunks)."""
    candidates = build_candidates(design_name)
    serial_ctx = RunContext(workers=1, backend="serial")
    parallel_ctx = RunContext(workers=PARALLEL_WORKERS, backend="thread")
    registry = default_registry()
    start = time.perf_counter()
    serial = evaluate_what_if(design_name, candidates, serial_ctx)
    serial_wall = time.perf_counter() - start
    chunks_before = registry.counter("whatif.chunks").value
    start = time.perf_counter()
    parallel = evaluate_what_if(design_name, candidates, parallel_ctx)
    parallel_wall = time.perf_counter() - start
    chunks = registry.counter("whatif.chunks").value - chunks_before
    return serial, parallel, serial_wall, parallel_wall, chunks


def equivalence_failures(design_name: str, serial, parallel,
                         chunks: int) -> "list[str]":
    """Human-readable divergences between the two evaluation modes."""
    failures = []
    if serial != parallel:  # frozen dataclasses; seconds excluded
        for index, (s, p) in enumerate(
            zip(serial.candidates, parallel.candidates)
        ):
            if s != p:
                failures.append(
                    f"{design_name} candidate {index}: serial and "
                    f"parallel results differ"
                )
        if (serial.wns_baseline, serial.tns_baseline) != (
            parallel.wns_baseline, parallel.tns_baseline
        ):
            failures.append(f"{design_name}: baselines differ")
    if chunks < 2:
        failures.append(
            f"{design_name}: parallel pass did not fan out "
            f"({chunks} chunk(s))"
        )
    mp_a = min_period_on_engine(api.make_engine(design_name))
    mp_b = min_period_on_engine(api.make_engine(design_name))
    if mp_a != mp_b:
        failures.append(f"{design_name}: min_period is not deterministic")
    return failures


def test_whatif_parallel_vs_sequential():
    """Parallel candidate evaluation is bit-identical to sequential."""
    failures = []
    rows = []
    for name in bench_design_names()[:1]:
        serial, parallel, s_wall, p_wall, chunks = run_design(name)
        failures += equivalence_failures(name, serial, parallel, chunks)
        rows.append([
            name, len(serial.candidates),
            f"{s_wall:.3f}", f"{p_wall:.3f}",
            f"{s_wall / p_wall:.2f}x" if p_wall else "-",
            chunks, "ok" if serial == parallel else "DIVERGED",
        ])
    print_table(
        "what-if parallel vs sequential",
        ["design", "cands", "seq s", "par s", "speedup", "chunks", "equal"],
        rows,
    )
    assert not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="what-if equivalence: parallel vs sequential "
                    "candidate evaluation",
    )
    parser.add_argument(
        "--designs", default="",
        help="comma-separated subset (default: REPRO_BENCH_DESIGNS or all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 on any serial/parallel divergence or a "
             "non-deterministic min-period search",
    )
    args = parser.parse_args(argv)
    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        or bench_design_names()
    )
    failures: "list[str]" = []
    rows = []
    for name in names:
        serial, parallel, s_wall, p_wall, chunks = run_design(name)
        failures += equivalence_failures(name, serial, parallel, chunks)
        rows.append([
            name, len(serial.candidates),
            f"{s_wall:.3f}", f"{p_wall:.3f}",
            f"{s_wall / p_wall:.2f}x" if p_wall else "-",
            chunks, "ok" if serial == parallel else "DIVERGED",
        ])
    print_table(
        f"what-if parallel vs sequential over {len(names)} design(s)",
        ["design", "cands", "seq s", "par s", "speedup", "chunks", "equal"],
        rows,
        note=f"{CANDIDATES_PER_DESIGN} candidates/design, "
             f"{PARALLEL_WORKERS} thread workers",
    )
    if failures and args.check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"warn: {failure}", file=sys.stderr)
    else:
        print("what-if parallel-vs-sequential equivalence: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
