"""Fig. 4: solution accuracy vs the number of sampled rows.

Paper: as the (uniformly sampled) equation count grows, the reduced
problem's solution converges sharply to the full solution — the curve
flattens well before all rows are used, justifying Algorithm 1's
doubling schedule.

Shape to reproduce: monotone (noisy-monotone) error decrease with row
count, reaching a small relative error at a fraction of the rows.
"""

import numpy as np

from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.utils.rng import make_rng

from benchmarks.conftest import print_table

DESIGN = "D6"


def test_fig4_accuracy_vs_rows(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    paths = enumerate_worst_paths(engine.graph, engine.state, 40)
    PBAEngine(engine).analyze(paths)
    problem = build_problem(paths)
    reference = solve_direct(problem).x
    reference_norm = float(np.linalg.norm(reference)) or 1.0

    rng = make_rng(0)
    permutation = rng.permutation(problem.num_paths)

    def solve_at(rows: int):
        reduced = problem.subproblem(permutation[:rows])
        return solve_direct(reduced).x

    m = problem.num_paths
    schedule = []
    rows = 32
    while rows < m:
        schedule.append(rows)
        rows *= 2
    schedule.append(m)

    benchmark.pedantic(solve_at, args=(schedule[0],), rounds=1, iterations=1)

    table_rows = []
    errors = []
    for rows in schedule:
        x = solve_at(rows)
        error = float(np.linalg.norm(x - reference)) / reference_norm
        errors.append(error)
        bar = "#" * max(1, int(50 * min(error, 1.0)))
        table_rows.append([
            rows, f"{rows/m*100:.1f}%", f"{error:.4f}", bar
        ])
    print_table(
        f"Fig. 4: ||x_r - x*|| / ||x*|| vs sampled rows on {DESIGN} "
        f"(m = {m})",
        ["rows", "fraction", "rel. error", ""],
        table_rows,
        note="Shape: sharp convergence well before using all rows.",
    )

    # Converged at the end, and substantially before the end.
    assert errors[-1] < 1e-6
    half_idx = len(schedule) // 2
    assert min(errors[half_idx:]) < 0.25
    # Broad decrease: last quarter below first quarter.
    assert np.mean(errors[-2:]) < np.mean(errors[:2])


def test_fig4_rs_convergence_xaxis(benchmark, engine_cache):
    """Algorithm 1's convergence curve on its true iteration axis.

    Each doubling round contributes one full-problem objective sample;
    ``history_iters`` records the cumulative inner-SCG iteration count
    at which it was taken, so the curve is plottable against real work
    rather than round number.
    """
    from repro.mgba.solvers import solve_with_row_sampling

    engine = engine_cache(DESIGN)
    paths = enumerate_worst_paths(engine.graph, engine.state, 40)
    PBAEngine(engine).analyze(paths)
    problem = build_problem(paths)

    benchmark.pedantic(
        solve_with_row_sampling, args=(problem,), kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    result = solve_with_row_sampling(problem, seed=0)

    assert len(result.history) == len(result.history_iters)
    assert result.history_iters == sorted(result.history_iters)
    assert result.history_iters[-1] <= result.iterations
    rows = [
        [i + 1, iters, f"{obj:.4e}"]
        for i, (iters, obj) in enumerate(result.convergence_curve())
    ]
    print_table(
        f"Fig. 4 (companion): RS objective vs cumulative SCG iterations "
        f"on {DESIGN}",
        ["round", "cum. iterations", "objective"],
        rows,
        note="x-axis from SolverResult.history_iters.",
    )
