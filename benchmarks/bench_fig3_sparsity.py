"""Fig. 3: distribution of the optimal correction x*.

Paper: on a small industrial case, 95.9% of the entries of x* fall
inside [-0.01, 0.01] — the optimum is extremely sparse, which is what
makes uniform row sampling work (x0 = 0 is already "almost right" for
almost every gate).

Sparsity is a property of *where the pessimism lives*: industrial
designs keep most gates on essentially one path shape (GBA depth ==
PBA depth -> zero correction), with the gap concentrated on a minority
of reconvergent gates.  The default D-suite deliberately spreads
pessimism everywhere (it stresses the solver), so this bench builds a
dedicated design in the industrial regime: chain-like cones with a few
branching hotspots and a distance-flat derating table.

Shape to reproduce: a histogram sharply peaked at zero with ~90% of
mass within +/-0.05.  The exact 95.9%-within-0.01 figure is not
reached — our fitted systems are underdetermined (m ~ n/4 vs the
paper's m >> n), so the regularized solver spreads each hotspot's
correction over its path — documented in EXPERIMENTS.md.
"""

from dataclasses import replace

import numpy as np

from repro.designs.generator import DesignSpec, generate_design
from repro.mgba.apply import solution_sparsity
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.timing.sta import STAEngine

from benchmarks.conftest import print_table

#: Chain-dominated design: pessimism concentrated on NAND2 hotspots.
FIG3_SPEC = DesignSpec(
    "F3", seed=301, n_flops=48, n_inputs=8, n_outputs=4,
    depth_range=(5, 14), width_range=(1, 1), cross_source_prob=0.06,
    derate_distance_slope=0.0,
    footprint_pool=("INV",) * 9 + ("NAND2",),
    violation_quantile=0.8,
)

BINS = np.array([-0.5, -0.2, -0.1, -0.05, -0.01, 0.01, 0.05, 0.1, 0.2, 0.5])


def test_fig3_solution_sparsity(benchmark):
    design = generate_design(FIG3_SPEC)
    config = replace(
        design.sta_config,
        clock_derate_late=1.005, clock_derate_early=0.995,
    )
    engine = STAEngine(
        design.netlist, design.constraints, design.placement, config
    )
    engine.update_timing()
    paths = enumerate_worst_paths(engine.graph, engine.state, 20)
    PBAEngine(engine).analyze(paths)
    problem = build_problem(paths)

    result = benchmark.pedantic(
        solve_direct, args=(problem,), rounds=1, iterations=1
    )
    x = result.x

    counts, edges = np.histogram(x, bins=BINS)
    rows = [
        [f"[{edges[i]:+.2f}, {edges[i+1]:+.2f})", int(counts[i]),
         f"{counts[i]/x.size*100:.1f}%",
         "#" * int(60 * counts[i] / max(counts.max(), 1))]
        for i in range(len(counts))
    ]
    print_table(
        f"Fig. 3: histogram of x* (concentrated-pessimism design, "
        f"n = {x.size} gates, {problem.num_paths} paths)",
        ["bin", "count", "share", ""],
        rows,
    )
    near_zero = solution_sparsity(x, window=0.01)
    near_zero_wide = solution_sparsity(x, window=0.05)
    print(f"|x| <= 0.01: {near_zero*100:.1f}%   (paper: 95.9%)")
    print(f"|x| <= 0.05: {near_zero_wide*100:.1f}%")

    # Sparsity claims: zero-peaked, bulk of mass at/near zero.
    assert near_zero > 0.4
    assert near_zero_wide > 0.8
    central = counts[4]  # the [-0.01, +0.01) bin
    assert central >= counts.max() * 0.8
