"""Ablation: the optimism tolerance epsilon of Eq. (5).

epsilon trades fit accuracy against safety.  With epsilon = 0 the model
may never sit above golden PBA at all, leaving residual conservatism;
loosening epsilon lets the least-squares center its error band and cuts
mse — at the cost of bounded optimism.  This sweep quantifies the
trade the paper fixes at "a small tolerance".
"""

import numpy as np

from repro.mgba.metrics import mse, pass_ratio
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import print_table

DESIGN = "D6"
EPSILONS = (0.0, 0.01, 0.05, 0.10, 0.25)


def test_epsilon_sweep(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    paths = enumerate_worst_paths(engine.graph, engine.state, 20)
    PBAEngine(engine).analyze(paths)

    def fit(epsilon):
        problem = build_problem(paths, epsilon=epsilon, penalty=50.0)
        x = solve_direct(problem).x
        corrected = problem.corrected_slacks(x)
        overshoot = np.maximum(corrected - problem.s_pba, 0.0)
        return problem, corrected, overshoot

    benchmark.pedantic(fit, args=(0.05,), rounds=1, iterations=1)

    rows = []
    optimism_by_epsilon = []
    for epsilon in EPSILONS:
        problem, corrected, overshoot = fit(epsilon)
        worst_optimism = float(overshoot.max())
        optimism_by_epsilon.append(worst_optimism)
        rows.append([
            f"{epsilon:.2f}",
            f"{mse(corrected, problem.s_pba)*1e3:.4f}",
            f"{pass_ratio(corrected, problem.s_pba)*100:.2f}",
            f"{worst_optimism:.2f}",
            f"{(overshoot > 1e-6).mean()*100:.1f}%",
        ])
    print_table(
        f"Ablation: epsilon (Eq. 5 optimism tolerance) on {DESIGN}",
        ["epsilon", "mse (x1e-3)", "pass (%)", "worst optimism (ps)",
         "optimistic paths"],
        rows,
        note=(
            "Tighter epsilon = safer but residually conservative; the "
            "paper's small-epsilon choice sits where pass ratio has "
            "saturated while optimism stays bounded."
        ),
    )
    # Looser epsilon can only increase the permitted optimism.
    assert optimism_by_epsilon == sorted(optimism_by_epsilon)
