"""Table 5: runtime of the closure framework with GBA vs mGBA embedded.

Paper: despite the extra mGBA fit (939 s of a 41,205 s flow on
average), the corrected flow converges faster overall — 1.21x average
speedup — because it stops chasing phantom violations.

Shape to reproduce: the mGBA fit is a small fraction of the total, and
the mGBA flow's transform loop does no more work than the GBA flow's
(fewer or equal moves; total runtime in the same ballpark or better).
Absolute seconds are laptop-Python scale, not server-C++ scale.
"""


from benchmarks.conftest import bench_design_names, print_table


def test_table5_flow_runtime(benchmark, comparison_cache):
    names = bench_design_names()

    benchmark.pedantic(
        comparison_cache, args=(names[0],), rounds=1, iterations=1
    )

    rows = []
    total_gba = total_mgba = total_fit = 0.0
    speedups = []
    move_ratios = []
    fix_speedup_by_size = []
    for name in names:
        comparison = comparison_cache(name)
        runtime = comparison.runtime_row()
        total_gba += runtime["gba_flow"]
        total_mgba += runtime["total"]
        total_fit += runtime["mgba"]
        speedups.append(runtime["speedup"])
        gba_moves = comparison.gba.fix_tried
        mgba_moves = comparison.mgba.fix_tried
        move_ratios.append((gba_moves, mgba_moves))
        fix_speedup_by_size.append(
            (runtime["gba_flow"], runtime["fix_speedup"])
        )
        rows.append([
            name,
            f"{runtime['gba_flow']:.2f}",
            f"{runtime['post_route']:.2f}",
            f"{runtime['mgba']:.2f}",
            f"{runtime['total']:.2f}",
            f"{runtime['speedup']:.2f}x",
            f"{runtime['fix_speedup']:.2f}x",
            f"{gba_moves}/{mgba_moves}",
        ])
    n = len(names)
    rows.append([
        "Avg.",
        f"{total_gba/n:.2f}",
        f"{(total_mgba-total_fit)/n:.2f}",
        f"{total_fit/n:.2f}",
        f"{total_mgba/n:.2f}",
        f"{total_gba/total_mgba:.2f}x",
        "",
        "",
    ])
    print_table(
        "Table 5: closure-flow runtime (s) with GBA vs mGBA embedded",
        ["design", "GBA flow", "post-route", "mGBA fit", "total",
         "speedup", "fix speedup", "moves G/M"],
        rows,
        note=(
            "Paper average speedup: 1.21x with the fit at ~2% of the "
            "flow.  Two scale effects to read this through: (1) the "
            "mGBA flow spends MORE recovery time by design — each "
            "extra accepted move is Table 2's savings — so 'speedup' "
            "can dip below 1 at laptop scale; (2) the fit is a fixed "
            "cost that the paper amortizes over 10^4-10^5 s flows.  "
            "The reproduced mechanism: the corrected flow tries far "
            "fewer violation-FIXING moves ('moves G/M'), and on the "
            "largest designs 'fix speedup' (fixing time incl. the fit) "
            "already crosses 1x toward the paper's 1.21x."
        ),
    )

    total_tried_gba = sum(g for g, _ in move_ratios)
    total_tried_mgba = sum(m for _, m in move_ratios)
    assert total_tried_mgba <= total_tried_gba * 1.05, (
        "mGBA flow should not do more violation-fixing work than GBA flow"
    )
    # On the biggest designs the fit amortizes: fixing-side speedup >= ~1.
    largest = sorted(fix_speedup_by_size, reverse=True)[:2]
    assert max(spd for _, spd in largest) >= 1.0, (
        f"fixing-phase speedup should cross 1x at scale, got {largest}"
    )
