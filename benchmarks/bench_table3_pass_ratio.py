"""Table 3: correlation pass ratio of GBA vs mGBA against golden PBA.

Paper: on selected timing paths, GBA passes the 5%/5ps rule on 51.57%
of paths on average (as low as 0.12% on D8); mGBA passes 95.36%, a
+43.79-point average improvement, with *no design made worse*.

Shape to reproduce: large positive improvement on every design; mGBA
above 90% on average; no design's pass ratio degraded by the fit.
"""


from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.timing.sta import STAEngine

from benchmarks.conftest import bench_design_names, print_table


def _fresh_engine(design_cache, name) -> STAEngine:
    design = design_cache(name)
    return STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )


def test_table3_pass_ratio(benchmark, design_cache):
    names = bench_design_names()
    flow = MGBAFlow(MGBAConfig(k_per_endpoint=20, seed=0))

    benchmark.pedantic(
        flow.run, args=(_fresh_engine(design_cache, names[0]),),
        kwargs={"apply": False}, rounds=1, iterations=1,
    )

    rows = []
    total_gba = total_mgba = total_paths = 0.0
    improvements = []
    for name in names:
        engine = _fresh_engine(design_cache, name)
        result = flow.run(engine, apply=False)
        improvement = result.pass_ratio_improvement * 100
        improvements.append(improvement)
        total_gba += result.pass_ratio_gba
        total_mgba += result.pass_ratio_mgba
        total_paths += result.problem.num_paths
        rows.append([
            name,
            f"{result.problem.num_paths}",
            f"{result.pass_ratio_gba*100:.2f}",
            f"{result.pass_ratio_mgba*100:.2f}",
            f"{improvement:+.2f}",
        ])
    n = len(names)
    rows.append([
        "Avg.",
        f"{total_paths/n:.0f}",
        f"{total_gba/n*100:.2f}",
        f"{total_mgba/n*100:.2f}",
        f"{(total_mgba-total_gba)/n*100:+.2f}",
    ])
    print_table(
        "Table 3: pass ratio (5% / 5 ps rule) of GBA and mGBA vs golden PBA",
        ["design", "paths", "GBA (%)", "mGBA (%)", "improvement (pts)"],
        rows,
        note=(
            "Paper averages: GBA 51.57%, mGBA 95.36%, +43.79 pts, no "
            "design worse.  Selected paths: per-endpoint top-20."
        ),
    )
    assert all(delta >= -1e-9 for delta in improvements), \
        "a design's correlation degraded"
    assert total_mgba / n > 0.90
    assert (total_mgba - total_gba) / n > 0.10
