"""Scenario-stacked sweep bench: equivalence asserted, speedup logged.

One multi-corner sweep, two ways:

* **stacked** — the whole scenario matrix as one
  :class:`~repro.timing.scenarios.ScenarioStack` pass (an extra numpy
  axis over the shared levelized layout);
* **fan-out** — the pre-stack baseline: one full ``update_timing`` per
  corner, sharded over :class:`~repro.parallel.ProcessExecutor`
  workers.

Equivalence is hard-asserted per corner (bit-identical state arrays
and equal slack maps — the same contract tier-1 gates in
``tests/timing/test_scenarios.py``); wall-clock speedups are logged
and recorded to ``repro.obs.history``, never flaky-gated.

Also runnable as a script for the CI ``scenario-equivalence`` gate::

    python -m benchmarks.bench_scenarios --check --designs D1
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.designs.suite import build_design
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.timing.corners import Corner, MultiCornerAnalysis

from benchmarks.conftest import bench_design_names, print_table

#: Scenario count of the default sweep (the ISSUE's >= 4 bar, with
#: headroom: six corners spanning fast to slow).
DEFAULT_SCENARIOS = 6


def _corners(n: int) -> "tuple[Corner, ...]":
    return tuple(
        Corner(f"c{i}", 0.85 + 0.06 * i) for i in range(n)
    )


def _analysis(design, corners) -> MultiCornerAnalysis:
    return MultiCornerAnalysis(
        design.netlist, design.constraints,
        design.placement, design.sta_config, corners,
    )


def _engines_identical(a, b) -> bool:
    n = len(a.graph.nodes)
    for attr in ("arrival_late", "arrival_early", "slew"):
        if not np.array_equal(
            getattr(a.state, attr)[:n], getattr(b.state, attr)[:n]
        ):
            return False
    slacks_a = {s.name: s.slack for s in a.setup_slacks()}
    slacks_b = {s.name: s.slack for s in b.setup_slacks()}
    return slacks_a == slacks_b


def compare_sweeps(names, n_scenarios: int = DEFAULT_SCENARIOS,
                   workers: "int | None" = None):
    """Per-design rows + divergence list for stacked vs fan-out sweeps.

    The fan-out baseline runs on a :class:`ProcessExecutor` (one corner
    per worker — the strongest pre-stack configuration); ``workers=0``
    degrades it to serial for constrained CI boxes.
    """
    corners = _corners(n_scenarios)
    if workers == 0:
        executor = SerialExecutor(workers=1)
    else:
        executor = ProcessExecutor(workers=workers or n_scenarios)
    rows = []
    diverged = []
    for name in names:
        design = build_design(name)

        stacked = _analysis(design, corners)
        start = time.perf_counter()
        stacked.update_all()
        stacked_s = time.perf_counter() - start
        mode = stacked.last_update_mode

        fanout = _analysis(design, corners)
        start = time.perf_counter()
        fanout.update_all(executor, stacked=False)
        fanout_s = time.perf_counter() - start

        equal = mode == "stacked" and all(
            _engines_identical(stacked.engines[c.name],
                               fanout.engines[c.name])
            for c in corners
        ) and stacked.report() == fanout.report()
        if not equal:
            diverged.append(name)
        rows.append([
            name, str(n_scenarios),
            f"{stacked_s * 1e3:.1f}", f"{fanout_s * 1e3:.1f}",
            f"{fanout_s / stacked_s:.2f}x" if stacked_s > 0 else "-",
            "ok" if equal else "DIVERGED",
        ])
    return rows, diverged


_HEADERS = [
    "design", "scenarios", "stacked ms", "fan-out ms", "speedup", "equal",
]


def test_scenario_stack_vs_fanout(benchmark):
    """Bit-equality asserted on every design; speedups logged."""
    names = bench_design_names()
    largest = names[-1]
    corners = _corners(DEFAULT_SCENARIOS)

    def _stacked_sweep():
        analysis = _analysis(build_design(largest), corners)
        analysis.update_all()

    benchmark.pedantic(_stacked_sweep, rounds=1, iterations=1)

    rows, diverged = compare_sweeps(names)
    print_table(
        f"Scenario sweep: stacked vs process fan-out "
        f"(x{DEFAULT_SCENARIOS} corners)",
        _HEADERS, rows,
        note=(
            "stacked = one ScenarioStack pass over the shared layout; "
            "fan-out = one update_timing per corner on a process pool. "
            "Speedups are logged, not asserted; per-corner bit-equality "
            "is asserted."
        ),
    )
    assert not diverged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scenario sweep bench: stacked vs fan-out "
                    "equivalence + speed",
    )
    parser.add_argument(
        "--scenarios", type=int, default=DEFAULT_SCENARIOS,
        help=f"corner count per sweep (default: {DEFAULT_SCENARIOS})",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="fan-out worker count (default: one per scenario; "
             "0 = serial baseline)",
    )
    parser.add_argument(
        "--designs", default="",
        help="comma-separated subset (default: REPRO_BENCH_DESIGNS or all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the stacked sweep diverges from the fan-out "
             "(or was not taken at all)",
    )
    args = parser.parse_args(argv)
    if args.scenarios < 1:
        parser.error("--scenarios must be >= 1")
    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        or bench_design_names()
    )
    rows, diverged = compare_sweeps(names, args.scenarios, args.workers)
    print_table(
        f"Scenario sweep: stacked vs process fan-out "
        f"(x{args.scenarios} corners)",
        _HEADERS, rows,
    )
    if diverged:
        print(f"FAIL: scenario-sweep divergence on {diverged}",
              file=sys.stderr)
        return 1
    print("stacked-vs-fanout equivalence: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
