"""Table 1 + Fig. 2 (+ Eq. 2/3): the paper's worked pessimism example.

Regenerates the derating table, the GBA/PBA cell depths, and asserts
the published 740 ps (GBA) vs 690 ps (PBA) path delays exactly.  The
benchmarked kernel is the full STA update on the example circuit.
"""

import pytest

from repro.aocv.depth import compute_gba_depths
from repro.aocv.table import paper_table_1
from repro.designs.paper_example import (
    EXPECTED_GBA_DEPTHS,
    GBA_PATH_DELAY,
    PBA_PATH_DELAY,
    build_fig2_design,
)
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import worst_paths_to_endpoint
from repro.timing.sta import STAEngine

from benchmarks.conftest import print_table


def test_table1_and_fig2(benchmark):
    design = build_fig2_design()
    engine = STAEngine(design.netlist, design.constraints, None,
                       design.sta_config)

    benchmark(engine.update_timing)

    table = paper_table_1()
    rows = [
        [f"{int(dist)} nm"] + [
            f"{table.derate(depth, dist):.2f}" for depth in (3, 4, 5, 6)
        ]
        for dist in (500, 1000, 1500)
    ]
    print_table(
        "Table 1: derating factor lookup (depth 3-6 x distance)",
        ["distance", "3", "4", "5", "6"], rows,
    )

    depths = compute_gba_depths(design.netlist)
    assert depths == EXPECTED_GBA_DEPTHS
    main_path_gates = ["G1", "G2", "G3", "G4", "G5", "G6"]
    print_table(
        "Fig. 2: GBA worst depth per gate on the FF1->FF4 path "
        "(PBA depth = 6 for all)",
        ["gate"] + main_path_gates,
        [["gba depth"] + [depths[g] for g in main_path_gates]],
    )

    endpoint = engine.node_id("FF4", "D")
    path = worst_paths_to_endpoint(
        engine.graph, engine.state, endpoint, 1
    )[0]
    PBAEngine(engine).analyze_path(path)
    period = engine.constraints.primary_clock().period
    gba_delay = path.gba_arrival
    pba_delay = period - path.pba_slack
    assert gba_delay == pytest.approx(GBA_PATH_DELAY)
    assert pba_delay == pytest.approx(PBA_PATH_DELAY)
    print_table(
        "Eq. (2)/(3): FF1->FF4 path delay",
        ["view", "paper (ps)", "measured (ps)"],
        [
            ["PBA (Eq. 2)", f"{PBA_PATH_DELAY:.0f}", f"{pba_delay:.2f}"],
            ["GBA (Eq. 3)", f"{GBA_PATH_DELAY:.0f}", f"{gba_delay:.2f}"],
            ["pessimism", "50", f"{gba_delay - pba_delay:.2f}"],
        ],
        note="Exact match by construction: unit 100 ps gates + Table 1.",
    )
