"""Ablation: the constraint penalty weight w of Eq. (6).

Eq. (6) replaces the hard one-sided constraint with a quadratic
penalty.  Tiny w lets the fit drift optimistic; huge w distorts the
least-squares part.  The sweep shows the wide flat region that makes
the penalty form practical.
"""

import numpy as np

from repro.mgba.metrics import mse
from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import print_table

DESIGN = "D3"
PENALTIES = (0.0, 0.1, 1.0, 10.0, 100.0, 1000.0)


def test_penalty_sweep(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    paths = enumerate_worst_paths(engine.graph, engine.state, 20)
    PBAEngine(engine).analyze(paths)

    def fit(penalty):
        # epsilon = 0: the bound sits exactly at the golden slack, so
        # the unconstrained least-squares fit *does* overshoot on about
        # half the rows and the penalty has real work to do.
        problem = build_problem(paths, epsilon=0.0, penalty=penalty)
        x = solve_direct(problem).x
        corrected = problem.corrected_slacks(x)
        bound = problem.s_pba + problem.epsilon * np.abs(problem.s_pba)
        violation = np.maximum(corrected - bound, 0.0)
        return problem, corrected, violation

    benchmark.pedantic(fit, args=(10.0,), rounds=1, iterations=1)

    rows = []
    worst_violations = []
    fit_errors = []
    for penalty in PENALTIES:
        problem, corrected, violation = fit(penalty)
        worst = float(violation.max())
        worst_violations.append(worst)
        fit_errors.append(mse(corrected, problem.s_pba))
        rows.append([
            f"{penalty:g}",
            f"{fit_errors[-1]*1e3:.4f}",
            f"{worst:.3f}",
            f"{(violation > 1e-6).mean()*100:.1f}%",
        ])
    print_table(
        f"Ablation: penalty weight w (Eq. 6) on {DESIGN}",
        ["w", "mse (x1e-3)", "worst bound violation (ps)",
         "violating paths"],
        rows,
        note=(
            "Bound violations shrink monotonically with w while mse "
            "stays flat over orders of magnitude — the penalty form is "
            "robust to its one hyper-parameter."
        ),
    )
    # More penalty -> no more violation (weakly monotone).
    for lighter, heavier in zip(worst_violations, worst_violations[1:]):
        assert heavier <= lighter + 1e-6
    # And the fit error stays the same order of magnitude throughout.
    positive = [e for e in fit_errors if e > 0]
    assert max(positive) / min(positive) < 50
