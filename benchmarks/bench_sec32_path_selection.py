"""§3.2: critical-path selection scheme comparison.

Paper's small case (1437 gates, 8444 violated paths):

* all violated paths:            phi = 4.1 %
* global top-2000:               phi = 72.4 %, gate coverage 47.5 %
* per-endpoint top-k' (k'=20):   phi = 5.11 %, gate coverage 95.3 %

We reproduce the *ordering* on a suite design: fitting on the
per-endpoint selection must come close to the all-paths fit and beat
the same-budget global selection on both error and coverage.  The
benchmarked kernel is the per-endpoint selection itself.
"""


from repro.mgba.metrics import relative_error_phi
from repro.mgba.problem import build_problem
from repro.mgba.selection import (
    gate_coverage,
    global_topk,
    path_pool_gates,
    per_endpoint_topk,
)
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths

from benchmarks.conftest import print_table

DESIGN = "D6"
K_PRIME = 20


def _phi_on_pool(pool, selected):
    """Fit on `selected`, evaluate phi on the full `pool` (Eq. 10)."""
    problem = build_problem(selected)
    x = solve_direct(problem).x
    weights = dict(zip(problem.gates, x))
    full = build_problem(pool)
    full_x = [weights.get(g, 0.0) for g in full.gates]
    corrected = full.corrected_slacks(full_x)
    return relative_error_phi(corrected, full.s_pba)


def test_path_selection_schemes(benchmark, engine_cache):
    engine = engine_cache(DESIGN)
    pool = enumerate_worst_paths(engine.graph, engine.state, 40)
    PBAEngine(engine).analyze(pool)
    universe = path_pool_gates(pool)

    endpoint_selection = benchmark(per_endpoint_topk, pool, K_PRIME)
    budget = len(endpoint_selection)
    global_selection = global_topk(pool, budget)

    phi_all = _phi_on_pool(pool, pool)
    phi_global = _phi_on_pool(pool, global_selection)
    phi_endpoint = _phi_on_pool(pool, endpoint_selection)
    cov_global = gate_coverage(global_selection, universe)
    cov_endpoint = gate_coverage(endpoint_selection, universe)

    rows = [
        ["all selected paths", len(pool), f"{phi_all*100:.2f}%",
         "100.0%", "4.1%", "-"],
        [f"global top-{budget}", budget, f"{phi_global*100:.2f}%",
         f"{cov_global[0]*100:.1f}%", "72.4%", "47.5%"],
        [f"per-endpoint top-{K_PRIME}", budget,
         f"{phi_endpoint*100:.2f}%",
         f"{cov_endpoint[0]*100:.1f}%", "5.11%", "95.3%"],
    ]
    print_table(
        f"Sec. 3.2: path selection schemes on {DESIGN} "
        f"(pool = {len(pool)} paths)",
        ["scheme", "paths", "phi", "gate cover",
         "paper phi", "paper cover"],
        rows,
        note=(
            "Shape to reproduce: per-endpoint selection ~= all-paths "
            "accuracy at a fraction of the budget; global top-m' "
            "concentrates on few gates and fits far worse."
        ),
    )

    assert cov_endpoint[0] > cov_global[0]
    assert phi_endpoint < phi_global
    assert phi_endpoint < 3 * max(phi_all, 1e-6) + 0.05
