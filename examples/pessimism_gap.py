#!/usr/bin/env python3
"""The paper's Fig. 2 worked example: where GBA pessimism comes from.

Rebuilds the 4-flop / 8-gate circuit of the paper's preliminaries with
100 ps unit gates and the Table 1 derating table, then walks through:

* GBA worst depth vs PBA path depth per gate;
* the resulting 740 ps (GBA) vs 690 ps (PBA) path delay — Eq. (2)/(3);
* the phantom setup violation at T = 700 ps and how the mGBA fit
  removes it.

Run:  python examples/pessimism_gap.py
"""

from repro import MGBAConfig, MGBAFlow, PBAEngine, STAEngine
from repro.aocv.depth import compute_gba_depths
from repro.designs.paper_example import build_fig2_design
from repro.pba.enumerate import worst_paths_to_endpoint
from repro.timing.report import report_timing


def main() -> None:
    design = build_fig2_design(period=700.0)
    engine = STAEngine(design.netlist, design.constraints, None,
                       design.sta_config)
    engine.update_timing()

    print("Gate depths on the FF1 -> FF4 path (PBA counts the whole "
          "path; GBA takes each gate's shortest path):")
    depths = compute_gba_depths(design.netlist)
    table = design.derating_table
    print(f"  {'gate':>5} {'GBA depth':>10} {'GBA derate':>11} "
          f"{'PBA depth':>10} {'PBA derate':>11}")
    for gate in ("G1", "G2", "G3", "G4", "G5", "G6"):
        print(f"  {gate:>5} {depths[gate]:>10} "
              f"{table.derate(depths[gate], 0):>11.2f} "
              f"{6:>10} {table.derate(6, 0):>11.2f}")

    endpoint = engine.node_id("FF4", "D")
    path = worst_paths_to_endpoint(
        engine.graph, engine.state, endpoint, 1
    )[0]
    PBAEngine(engine).analyze_path(path)
    period = design.constraints.primary_clock().period
    print(f"\nEq. (3)  GBA path delay: {path.gba_arrival:.0f} ps "
          "(paper: 740)")
    print(f"Eq. (2)  PBA path delay: {period - path.pba_slack:.0f} ps "
          "(paper: 690)")
    print(f"Pessimism: {path.pessimism:.0f} ps on a {period:.0f} ps clock")

    print(f"\nAt T = {period:.0f} ps, GBA slack = {path.gba_slack:.0f} ps "
          f"(VIOLATED) but PBA slack = {path.pba_slack:.0f} ps (met).")
    print("A GBA-driven optimizer would now burn area fixing a path "
          "that was never broken.\n")

    print("Running the mGBA fit...")
    MGBAFlow(MGBAConfig(k_per_endpoint=4, solver="direct")).run(engine)
    violations = engine.summary().violations
    print(f"Setup violations after correction: {violations}")
    print()
    print(report_timing(engine, max_endpoints=1))


if __name__ == "__main__":
    main()
