#!/usr/bin/env python3
"""Quickstart: analyze a design with GBA, then remove its pessimism.

Builds suite design D1, reports its (pessimistic) graph-based timing,
runs the mGBA flow to fit per-gate correction weights against golden
PBA, and reports the corrected view.

Run:  python examples/quickstart.py
"""

from repro import MGBAConfig, MGBAFlow, STAEngine, build_design
from repro.timing.report import report_summary, report_timing


def main() -> None:
    design = build_design("D1")
    print(f"Design {design.name}: {design.netlist.stats()}")
    print(f"Clock period: "
          f"{design.constraints.primary_clock().period:.1f} ps\n")

    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )

    print("--- Graph-based analysis (GBA, worst-depth AOCV derates) ---")
    print(report_summary(engine))

    print("\n--- Fitting the mGBA correction (Fig. 5, right) ---")
    flow = MGBAFlow(MGBAConfig(k_per_endpoint=20, seed=0))
    result = flow.run(engine)
    print(f"fitted {result.problem.num_paths} paths over "
          f"{result.problem.num_gates} gates in "
          f"{result.total_seconds:.2f}s "
          f"({result.solution.solver}, {result.solution.iterations} iters)")
    print(f"model error  (Eq. 12): {result.mse_gba:.3e} -> "
          f"{result.mse_mgba:.3e}")
    print(f"pass ratio (5%/5 ps):  {result.pass_ratio_gba:.1%} -> "
          f"{result.pass_ratio_mgba:.1%}")

    print("\n--- Corrected (mGBA) view of the same design ---")
    print(report_summary(engine))

    print("\nWorst corrected paths:")
    print(report_timing(engine, max_endpoints=1))


if __name__ == "__main__":
    main()
