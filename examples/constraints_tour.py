#!/usr/bin/env python3
"""Constraint features tour: multi-clock domains, false paths,
multicycle paths — and what each does to GBA vs golden timing.

Run:  python examples/constraints_tour.py
"""

from repro import PBAEngine, STAEngine
from repro.designs.generator import DesignSpec, generate_design
from repro.pba.enumerate import worst_paths_to_endpoint
from repro.timing.slack import endpoint_clock_map


def main() -> None:
    spec = DesignSpec(
        "tour", seed=9, n_flops=20, n_inputs=4, n_outputs=3,
        depth_range=(3, 8), n_clock_domains=2,
    )
    design = generate_design(spec)
    print("Two calibrated clock domains:")
    for clock in design.constraints.clocks.values():
        print(f"  {clock.name}: period {clock.period:.1f} ps, "
              f"uncertainty {clock.uncertainty:.0f} ps")

    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    engine.update_timing()
    clock_map = endpoint_clock_map(engine.graph, design.constraints)
    summary = engine.summary()
    print(f"\nBaseline: WNS {summary.wns:.1f} ps, "
          f"{summary.violations} violations over both domains")

    worst = engine.violating_endpoints()[0]
    worst_clock = clock_map[worst.node]
    capture_gate = engine.graph.endpoints[worst.node].gate
    print(f"Worst endpoint {worst.name} is in domain {worst_clock.name} "
          f"(slack {worst.slack:.1f} ps)")

    # --- multicycle: give the worst endpoint two capture cycles -------
    design.constraints.set_multicycle_path(2, to_pattern=capture_gate)
    engine.update_timing()
    relaxed = next(
        s for s in engine.setup_slacks() if s.node == worst.node
    )
    print(f"\nAfter set_multicycle_path 2 -to {capture_gate}:")
    print(f"  {worst.name} slack {worst.slack:.1f} -> "
          f"{relaxed.slack:.1f} ps (one extra period)")

    # --- false path: see PBA honour what GBA cannot -------------------
    paths = worst_paths_to_endpoint(
        engine.graph, engine.state, worst.node, 4
    )
    pba = PBAEngine(engine)
    pba.analyze(paths)
    launches = sorted({p.launch_name.split("/")[0] for p in paths})
    victim = launches[0]
    design.constraints.set_false_path(
        from_pattern=victim, to_pattern=capture_gate
    )
    paths = worst_paths_to_endpoint(
        engine.graph, engine.state, worst.node, 4
    )
    PBAEngine(engine).analyze(paths)
    print(f"\nAfter set_false_path -from {victim} -to {capture_gate}:")
    for path in paths:
        marker = "FALSE " if path.is_false else "real  "
        print(f"  {marker} {path.launch_name:>10} -> {path.endpoint_name}"
              f"  pba_slack {path.pba_slack:9.1f}")
    golden = pba.golden_endpoint_slack(worst.node)
    print(f"  golden endpoint slack (false paths excluded): {golden:.1f}")
    print("  GBA, with no launch identity, must conservatively keep the "
          "false paths;\n  the mGBA fit absorbs that gap like any other "
          "pessimism source.")


if __name__ == "__main__":
    main()
