#!/usr/bin/env python3
"""A/B the timing-closure flow with and without mGBA (Tables 2 & 5).

Runs the greedy closure optimizer twice on pristine copies of one suite
design — once driven by plain GBA slacks, once by mGBA-corrected
slacks — and reports area/leakage/buffers plus sign-off (golden PBA)
timing for both results.

Run:  python examples/closure_flow.py [design]
"""

import sys

from repro import ClosureConfig, run_flow_comparison
from repro.designs.suite import design_factory


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "D3"
    print(f"Running GBA-driven and mGBA-driven closure on {design_name} "
          "(identical starting netlists)...\n")
    comparison = run_flow_comparison(
        design_name,
        design_factory(design_name),
        ClosureConfig(max_transforms=150),
    )

    def describe(label, report, signoff):
        print(f"{label}:")
        print(f"  transforms: {report.transforms_applied} applied / "
              f"{report.transforms_tried} tried in "
              f"{report.seconds_total:.2f}s"
              + (f" (incl. {report.seconds_mgba:.2f}s mGBA fit)"
                 if report.seconds_mgba else ""))
        qor = report.final
        print(f"  final:  area={qor.area:.1f} um^2  "
              f"leakage={qor.leakage:.1f} nW  buffers={qor.buffers}")
        print(f"  sign-off (golden PBA): WNS={signoff.wns:.1f} ps  "
              f"TNS={signoff.tns:.1f} ps  "
              f"violations={signoff.violations}\n")

    describe("GBA flow", comparison.gba, comparison.gba_signoff)
    describe("mGBA flow", comparison.mgba, comparison.mgba_signoff)

    gains = comparison.qor_improvement()
    print("mGBA flow improvement over GBA flow "
          "(positive = better, paper Table 2):")
    for key in ("wns", "tns", "area", "leakage", "buffer"):
        print(f"  {key:>8}: {gains[key]:+.2f}%")
    runtime = comparison.runtime_row()
    print(f"\nRuntime (paper Table 5): GBA {runtime['gba_flow']:.2f}s vs "
          f"mGBA {runtime['total']:.2f}s "
          f"(fit {runtime['mgba']:.2f}s) -> {runtime['speedup']:.2f}x")


if __name__ == "__main__":
    main()
