#!/usr/bin/env python3
"""Fit once, reuse forever: persisting the mGBA correction.

A fit costs solver time; this example saves the fitted weights next to
the design, reloads them into a fresh session, and shows (a) identical
corrected timing and (b) the fingerprint guard refusing stale weights
after the netlist changes.

Run:  python examples/fit_and_reuse.py
"""

import tempfile
from pathlib import Path

from repro import MGBAConfig, MGBAFlow, STAEngine, SolverError, build_design
from repro.mgba.persistence import load_weights, save_weights
from repro.netlist.edit import resize_gate


def main() -> None:
    design = build_design("D2")
    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    result = MGBAFlow(MGBAConfig(k_per_endpoint=15, seed=0)).run(engine)
    corrected = engine.summary()
    print(f"fitted {len(result.weights)} gate weights "
          f"(pass ratio {result.pass_ratio_mgba:.1%}); "
          f"corrected WNS {corrected.wns:.1f} ps")

    with tempfile.TemporaryDirectory() as tmp:
        weight_file = Path(tmp) / "D2.weights.json"
        save_weights(engine.weights, design.netlist, weight_file)
        print(f"saved -> {weight_file.name} "
              f"({weight_file.stat().st_size} bytes)")

        # A later session: fresh design copy, no solve needed.
        later = build_design("D2")
        later_engine = STAEngine(
            later.netlist, later.constraints,
            later.placement, later.sta_config,
        )
        print(f"fresh session GBA WNS: {later_engine.summary().wns:.1f} ps")
        later_engine.set_gate_weights(
            load_weights(weight_file, later.netlist)
        )
        reloaded = later_engine.summary()
        print(f"after loading weights:  {reloaded.wns:.1f} ps "
              f"(identical: {abs(reloaded.wns - corrected.wns) < 1e-6})")

        # The guard: change the netlist, loading must refuse.
        gate = later.netlist.combinational_gates()[0]
        resize_gate(later.netlist, gate, up=True) or resize_gate(
            later.netlist, gate, up=False
        )
        try:
            load_weights(weight_file, later.netlist)
        except SolverError as exc:
            print(f"stale-weight guard: {exc}")
        # Resize-only drift is fine non-strictly:
        weights = load_weights(weight_file, later.netlist, strict=False)
        print(f"strict=False recovers {len(weights)} weights "
              "(resize-only drift)")


if __name__ == "__main__":
    main()
