#!/usr/bin/env python3
"""Bring your own design: Verilog + SDC + AOCV text in, timing out.

Shows the file-format surface of the library — a structural Verilog
netlist, SDC constraints, and an AOCV derating table authored as plain
strings — parsed and analyzed end to end, including the GBA/PBA gap on
your own paths.

Run:  python examples/custom_design.py
"""

from repro import (
    PBAEngine,
    STAConfig,
    STAEngine,
    make_default_library,
    parse_sdc,
    parse_verilog,
)
from repro.aocv.table import parse_aocv
from repro.pba.enumerate import enumerate_worst_paths
from repro.timing.report import report_timing

VERILOG = """
module mac_slice (clk, a, b, y);
  input clk;
  input a;
  input b;
  output y;
  wire qa, qb, p1, p2, p3, s1, s2;
  DFF_X1  ra (.D(a),  .CK(clk), .Q(qa));
  DFF_X1  rb (.D(b),  .CK(clk), .Q(qb));
  NAND2_X1 m1 (.A(qa), .B(qb), .Z(p1));
  XOR2_X1  m2 (.A(p1), .B(qb), .Z(p2));
  AOI21_X1 m3 (.A(p2), .B(qa), .C(p1), .Z(p3));
  INV_X1   i1 (.A(p3), .Z(s1));
  NAND2_X2 m4 (.A(s1), .B(p1), .Z(s2));
  DFF_X1  ry (.D(s2), .CK(clk), .Q(y));
endmodule
"""

SDC = """
create_clock -name clk -period 0.42 [get_ports clk]
set_clock_uncertainty 0.02 [get_clocks clk]
set_input_delay 0.05 -clock clk [get_ports a]
set_input_delay 0.05 -clock clk [get_ports b]
set_output_delay 0.05 -clock clk [get_ports y]
"""

AOCV = """
# depth x distance late derates
depth 1 2 4 8 16
distance 500 5000 20000
1.38 1.27 1.19 1.13 1.09
1.41 1.30 1.22 1.16 1.12
1.45 1.34 1.26 1.20 1.16
"""


def main() -> None:
    library = make_default_library()
    netlist = parse_verilog(VERILOG, library)
    constraints = parse_sdc(SDC)
    table = parse_aocv(AOCV)
    print(f"Parsed {netlist.name}: {netlist.stats()}")

    engine = STAEngine(
        netlist, constraints, None, STAConfig(derating_table=table)
    )
    print(report_timing(engine, max_endpoints=2))

    print("GBA vs golden PBA on the worst paths:")
    paths = enumerate_worst_paths(engine.graph, engine.state, 3)
    PBAEngine(engine).analyze(paths)
    print(f"  {'launch':>8} -> {'endpoint':>8} {'depth':>6} "
          f"{'GBA slack':>10} {'PBA slack':>10} {'pessimism':>10}")
    for path in sorted(paths, key=lambda p: p.gba_slack)[:6]:
        print(f"  {path.launch_name:>8} -> {path.endpoint_name:>8} "
              f"{path.depth:>6} {path.gba_slack:>10.1f} "
              f"{path.pba_slack:>10.1f} {path.pessimism:>10.1f}")


if __name__ == "__main__":
    main()
