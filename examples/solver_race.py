#!/usr/bin/env python3
"""Race the mGBA solvers on one design (the Table 4 experiment, solo).

Builds the fitting problem for a suite design and runs all four
solvers — direct LSQR reference, full gradient descent, stochastic CG
(Algorithm 2), and uniform row sampling + SCG (Algorithm 1) — printing
accuracy and wall clock for each.

Run:  python examples/solver_race.py [design] [k_per_endpoint]
"""

import sys
import time

from repro import (
    PBAEngine,
    STAEngine,
    build_design,
    build_problem,
    enumerate_worst_paths,
    mse,
    solve_direct,
    solve_gd,
    solve_scg,
    solve_with_row_sampling,
)


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "D6"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    design = build_design(design_name)
    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    engine.update_timing()
    paths = enumerate_worst_paths(engine.graph, engine.state, k)
    PBAEngine(engine).analyze(paths)
    problem = build_problem(paths)
    print(f"{design_name}: {problem.num_paths} paths x "
          f"{problem.num_gates} gates, "
          f"{problem.matrix.nnz} nonzeros")
    print(f"GBA baseline mse (Eq. 12): "
          f"{mse(problem.s_gba, problem.s_pba):.3e}\n")

    solvers = [
        ("direct (LSQR ref)", lambda: solve_direct(problem)),
        ("GD   + w/o RS", lambda: solve_gd(problem)),
        ("SCG  + w/o RS (Alg. 2)", lambda: solve_scg(problem, seed=0)),
        ("SCG  + RS (Alg. 1+2)",
         lambda: solve_with_row_sampling(problem, seed=0)),
    ]
    print(f"{'solver':<26} {'mse':>10} {'time':>8} {'iters':>7} "
          f"{'speedup vs GD':>14}")
    gd_time = None
    for name, run in solvers:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if name.startswith("GD"):
            gd_time = elapsed
        accuracy = mse(problem.corrected_slacks(result.x), problem.s_pba)
        speedup = f"{gd_time/elapsed:.2f}x" if gd_time else "-"
        print(f"{name:<26} {accuracy:>10.2e} {elapsed:>7.2f}s "
              f"{result.iterations:>7} {speedup:>14}")

    print("\nPaper's Table 4 averages: SCG 2.71x, SCG+RS 13.82x over GD "
          "at comparable accuracy.")


if __name__ == "__main__":
    main()
