#!/usr/bin/env python3
"""Multi-corner sign-off: SS / TT / FF, merged per endpoint.

Runs a suite design at the three classic corners, prints the per-corner
summaries and the merged worst-per-endpoint view, and shows that the
mGBA correction carries across corners (fit at the dominant slow
corner, check the others).

Run:  python examples/multicorner_signoff.py [design]
"""

import sys

from repro import MGBAConfig, MGBAFlow, build_design
from repro.timing.corners import MultiCornerAnalysis
from repro.timing.slack import CheckKind


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "D3"
    design = build_design(design_name)
    analysis = MultiCornerAnalysis(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    analysis.update_all()
    print(f"{design_name} across corners:\n")
    print(analysis.report())

    dominant = analysis.dominant_corner(CheckKind.SETUP)
    print(f"\nFitting mGBA at the dominant corner ({dominant})...")
    engine = analysis.engine(dominant)
    result = MGBAFlow(MGBAConfig(k_per_endpoint=15, seed=0)).run(engine)
    print(f"pass ratio at {dominant}: {result.pass_ratio_gba:.1%} -> "
          f"{result.pass_ratio_mgba:.1%}")

    print("\nCorrected summaries (weights installed per corner):")
    for corner_name, corner_engine in analysis.engines.items():
        if corner_name != dominant:
            corner_engine.set_gate_weights(engine.weights)
        summary = corner_engine.summary()
        print(f"  {corner_name}: WNS {summary.wns:9.1f} ps  "
              f"violations {summary.violations}")
    print("\n(Weights are depth-shaped, not absolute-delay-shaped, so "
          "one fit transfers across proportional corners; a production "
          "flow would refit per corner for exactness.)")


if __name__ == "__main__":
    main()
